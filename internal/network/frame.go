package network

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"esr/internal/clock"
)

// Wire format of the TCP transport.  Every frame starts with a single
// codec-version byte so that future codec changes never crash old peers
// mid-rollout: an unknown version is a typed, recognizable error, not a
// misparsed length.
//
//	offset  size  field
//	0       1     codec version (1, 2 or 3)
//	1       4     big-endian length of everything after this field
//	5       1     frame kind (send / call / batch / resp)
//	6       8     big-endian request id (matches responses to requests)
//	14      8     big-endian origin site id
//	22      8     big-endian destination site id
//	-- versions 2 and 3 append the trace context --
//	30      8     big-endian trace origin site id (0 = untraced)
//	38      8     big-endian MSet message identity (0 for batch/resp)
//	46      8     big-endian causal (Lamport) stamp
//	-- version 3 appends the ordering shard --
//	54      2     big-endian ordering-shard index
//	30|54|56  —   body
//
// Body by kind:
//
//	send, call:  the payload bytes, verbatim
//	batch:       uint32 message count, then per message (v2+: uint64 MSet
//	             identity +) uint32 length + bytes (the SendBatch
//	             framing: one frame per batch)
//	resp:        1 status byte, then the response payload (ok) or the
//	             error text (all failure codes)
//
// Version 2 added the causal trace context so every remote delivery is
// attributable to its originating update; version 3 (this build's
// native codec) adds the ordering shard the traffic belongs to, so
// per-shard timelines survive the wire.  Decoding accepts all three —
// a v1 frame carries an empty trace context, a v2 frame shard 0 — so a
// v3 cluster can drain traffic from older peers during a rolling
// upgrade.  Encoding always emits v3 (roll-forward).

// CodecVersion is the wire-format version this build emits.  It is the
// first byte of every frame.
const CodecVersion = 3

// codecV2 is the previous wire format, still accepted on decode: it
// carries the trace context but no ordering shard.
const codecV2 = 2

// codecV1 is the original wire format, still accepted on decode: it
// lacks the trailing trace context and batch-body MSet identities.
const codecV1 = 1

// Frame kinds.
const (
	frameSend  = byte(1) // one-way message, acked by an empty resp
	frameCall  = byte(2) // round trip, resp carries the handler's reply
	frameBatch = byte(3) // whole SendBatch frame, acked by one resp
	frameResp  = byte(4) // response to any of the above
)

// Response status codes.  Non-OK codes map back to the package's
// sentinel errors on the sender, so errors.Is behaves identically over
// the simulator and over TCP.
const (
	respOK          = byte(0)
	respErr         = byte(1) // handler (application) error; body is the text
	respUnknownSite = byte(2)
	respSiteDown    = byte(3)
	respPartitioned = byte(4)
)

// frameHeaderLen is the byte length of the fixed v1 header (version
// through destination site); v2 headers carry traceCtxLen more bytes
// and v3 headers traceCtxLenV3.
const frameHeaderLen = 1 + 4 + 1 + 8 + 8 + 8

// traceCtxLen is the byte length of the v2 trace-context extension
// (trace origin + MSet identity + causal stamp).
const traceCtxLen = 8 + 8 + 8

// traceCtxLenV3 is the byte length of the v3 extension: the v2 trace
// context plus the 2-byte ordering-shard index.
const traceCtxLenV3 = traceCtxLen + 2

// maxFrameLen bounds a frame's post-length size: a garbage or hostile
// length prefix must not become a multi-gigabyte allocation.
const maxFrameLen = 64 << 20

// CodecVersionError reports a frame whose leading version byte is not a
// codec this build understands.  The connection carrying it is closed
// (framing cannot be trusted past an unknown codec); the sender's
// in-flight operations fail and retry through the stable queues.
type CodecVersionError struct {
	// Got is the version byte received.
	Got byte
}

func (e *CodecVersionError) Error() string {
	return fmt.Sprintf("network: unknown codec version %d (this build speaks %d)", e.Got, CodecVersion)
}

// TraceContext is the causal attribution carried by v2+ frames: which
// update (origin site + MSet message identity) caused this network
// activity, and the sender's causal stamp at send time.  The receiver
// merges Stamp into its trace ring so downstream events order after
// the sender's.  The zero value means "untraced" and is what v1 frames
// decode to.
type TraceContext struct {
	// Origin is the site whose update caused this traffic.
	Origin clock.SiteID
	// MSet is the message identity of the update (0 when the frame
	// carries many — batches list per-message identities in the body —
	// or none).
	MSet uint64
	// Stamp is the sender's causal (Lamport) stamp at send time.
	Stamp uint64
	// Shard is the ordering shard this traffic belongs to (v3 frames
	// only; v1/v2 frames decode to 0, the pre-sharding domain).
	Shard int
}

// frame is one decoded wire frame.  body aliases the read buffer and is
// only valid until the next read on the same connection, except where
// noted (payloads handed to handlers are copied by the decoder).
type frame struct {
	ver      byte
	kind     byte
	req      uint64
	from, to clock.SiteID
	tc       TraceContext
	body     []byte
}

// frameBufPool recycles frame encode/decode buffers; frames are built
// and parsed on the hot path of every remote delivery.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// getFrameBuf returns a pooled, zero-length buffer.
func getFrameBuf() *[]byte {
	b := frameBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putFrameBuf returns a buffer to the pool.  Oversized buffers (from a
// one-off huge frame) are dropped so the pool keeps its working-set
// footprint.
func putFrameBuf(b *[]byte) {
	if cap(*b) <= 1<<20 {
		frameBufPool.Put(b)
	}
}

// appendFrameHeader appends the fixed v3 header (including the trace
// context and ordering shard) with a zero length field; finishFrame
// patches the length once the body is in place.
func appendFrameHeader(dst []byte, kind byte, req uint64, from, to clock.SiteID, tc TraceContext) []byte {
	dst = append(dst, CodecVersion)
	dst = append(dst, 0, 0, 0, 0) // length, patched by finishFrame
	dst = append(dst, kind)
	dst = binary.BigEndian.AppendUint64(dst, req)
	dst = binary.BigEndian.AppendUint64(dst, uint64(from))
	dst = binary.BigEndian.AppendUint64(dst, uint64(to))
	dst = binary.BigEndian.AppendUint64(dst, uint64(tc.Origin))
	dst = binary.BigEndian.AppendUint64(dst, tc.MSet)
	dst = binary.BigEndian.AppendUint64(dst, tc.Stamp)
	dst = binary.BigEndian.AppendUint16(dst, uint16(tc.Shard))
	return dst
}

// finishFrame patches the length field of the frame that starts at
// offset start in dst.
func finishFrame(dst []byte, start int) {
	binary.BigEndian.PutUint32(dst[start+1:start+5], uint32(len(dst)-start-5))
}

// appendBatchBody appends the v2+ SendBatch body: message count, then
// per message its MSet identity + length-prefixed payload.  ids may be
// nil (untraced batch: identities are written as zero) but otherwise
// must match payloads in length.
func appendBatchBody(dst []byte, payloads [][]byte, ids []uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payloads)))
	for i, p := range payloads {
		var id uint64
		if i < len(ids) {
			id = ids[i]
		}
		dst = binary.BigEndian.AppendUint64(dst, id)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

// splitBatchBody decodes a batch body into its payload slices and (for
// v2+ bodies) per-message MSet identities; ids is nil for v1 bodies.
// The returned payload slices alias body.
func splitBatchBody(body []byte, ver byte) ([][]byte, []uint64, error) {
	if len(body) < 4 {
		return nil, nil, fmt.Errorf("network: batch frame truncated (%d bytes)", len(body))
	}
	n := binary.BigEndian.Uint32(body)
	body = body[4:]
	if n > maxFrameLen/4 {
		return nil, nil, fmt.Errorf("network: batch frame claims %d messages", n)
	}
	out := make([][]byte, 0, n)
	var ids []uint64
	if ver >= codecV2 {
		ids = make([]uint64, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		if ver >= codecV2 {
			if len(body) < 8 {
				return nil, nil, fmt.Errorf("network: batch frame truncated at message %d identity", i)
			}
			ids = append(ids, binary.BigEndian.Uint64(body))
			body = body[8:]
		}
		if len(body) < 4 {
			return nil, nil, fmt.Errorf("network: batch frame truncated at message %d", i)
		}
		l := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < l {
			return nil, nil, fmt.Errorf("network: batch frame truncated at message %d payload", i)
		}
		out = append(out, body[:l:l])
		body = body[l:]
	}
	if len(body) != 0 {
		return nil, nil, fmt.Errorf("network: batch frame has %d trailing bytes", len(body))
	}
	return out, ids, nil
}

// readFrame reads one frame from r, accepting both the current codec
// and v1 (whose frames decode to an empty trace context).  An unknown
// leading version byte returns *CodecVersionError; the caller must
// close the connection (the framing beyond an unknown codec cannot be
// trusted).  The returned frame's body is freshly allocated and safe
// to retain.
func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderLen + traceCtxLenV3]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return frame{}, err
	}
	if hdr[0] != CodecVersion && hdr[0] != codecV2 && hdr[0] != codecV1 {
		return frame{}, &CodecVersionError{Got: hdr[0]}
	}
	hdrLen := frameHeaderLen
	switch hdr[0] {
	case CodecVersion:
		hdrLen += traceCtxLenV3
	case codecV2:
		hdrLen += traceCtxLen
	}
	if _, err := io.ReadFull(r, hdr[1:hdrLen]); err != nil {
		return frame{}, fmt.Errorf("network: short frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[1:5])
	if length < uint32(hdrLen-5) {
		return frame{}, fmt.Errorf("network: frame length %d shorter than header", length)
	}
	if length > maxFrameLen {
		return frame{}, fmt.Errorf("network: frame length %d exceeds limit %d", length, maxFrameLen)
	}
	f := frame{
		ver:  hdr[0],
		kind: hdr[5],
		req:  binary.BigEndian.Uint64(hdr[6:14]),
		from: clock.SiteID(binary.BigEndian.Uint64(hdr[14:22])),
		to:   clock.SiteID(binary.BigEndian.Uint64(hdr[22:30])),
	}
	if f.ver >= codecV2 {
		f.tc = TraceContext{
			Origin: clock.SiteID(binary.BigEndian.Uint64(hdr[30:38])),
			MSet:   binary.BigEndian.Uint64(hdr[38:46]),
			Stamp:  binary.BigEndian.Uint64(hdr[46:54]),
		}
	}
	if f.ver == CodecVersion {
		f.tc.Shard = int(binary.BigEndian.Uint16(hdr[54:56]))
	}
	bodyLen := int(length) - (hdrLen - 5)
	if bodyLen > 0 {
		f.body = make([]byte, bodyLen)
		if _, err := io.ReadFull(r, f.body); err != nil {
			return frame{}, fmt.Errorf("network: short frame body: %w", err)
		}
	}
	return f, nil
}

// respError converts a non-OK response status + body into the sender's
// error, mapping wire codes back to the package sentinels.
func respError(status byte, body []byte) error {
	switch status {
	case respUnknownSite:
		return fmt.Errorf("%w: %s", ErrUnknownSite, body)
	case respSiteDown:
		return ErrSiteDown
	case respPartitioned:
		return ErrPartitioned
	default:
		return &RemoteError{Msg: string(body)}
	}
}
