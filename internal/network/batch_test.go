package network

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"esr/internal/clock"
)

func TestSendBatchDeliversOneFrame(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	var mu sync.Mutex
	var got [][]byte
	tr.RegisterBatch(2, func(from clock.SiteID, payloads [][]byte) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, payloads...)
		return nil
	})
	frame := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	if err := tr.SendBatch(1, 2, frame); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if err := tr.SendBatch(1, 2, nil); err != nil {
		t.Errorf("empty SendBatch: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("delivered %d payloads, want 3", len(got))
	}
	st := tr.Stats()
	if st.Frames != 1 {
		t.Errorf("Frames = %d, want 1 (one frame for the whole batch)", st.Frames)
	}
	if st.Delivered != 3 || st.Sent != 3 {
		t.Errorf("Delivered/Sent = %d/%d, want 3/3", st.Delivered, st.Sent)
	}
	if st.Bytes != 6 {
		t.Errorf("Bytes = %d, want 6", st.Bytes)
	}
}

func TestSendBatchFallsBackToSingleHandler(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	var n int
	tr.Register(2, func(from clock.SiteID, payload []byte) ([]byte, error) {
		n++
		return nil, nil
	})
	if err := tr.SendBatch(1, 2, [][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Fatalf("SendBatch without batch handler: %v", err)
	}
	if n != 2 {
		t.Errorf("fallback delivered %d, want 2", n)
	}
	if st := tr.Stats(); st.Frames != 1 {
		t.Errorf("Frames = %d, want 1 even via fallback", st.Frames)
	}
}

func TestSendBatchWholeFramePartitioned(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	tr.RegisterBatch(2, func(from clock.SiteID, payloads [][]byte) error { return nil })
	tr.Partition([]clock.SiteID{1}, []clock.SiteID{2})
	err := tr.SendBatch(1, 2, [][]byte{[]byte("a"), []byte("b")})
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	if st := tr.Stats(); st.Partitioned != 2 {
		t.Errorf("Partitioned = %d, want 2 (per message)", st.Partitioned)
	}
	tr.Heal()
	if err := tr.SendBatch(1, 2, [][]byte{[]byte("a")}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestSendBatchLossDropsWholeFrame(t *testing.T) {
	tr := mustSim(t, Config{Seed: 7, LossRate: 1})
	tr.RegisterBatch(2, func(from clock.SiteID, payloads [][]byte) error {
		t.Error("lost frame reached the handler")
		return nil
	})
	if err := tr.SendBatch(1, 2, [][]byte{[]byte("a"), []byte("b"), []byte("c")}); !errors.Is(err, ErrLost) {
		t.Fatalf("want ErrLost, got %v", err)
	}
	if st := tr.Stats(); st.Lost != 3 {
		t.Errorf("Lost = %d, want 3", st.Lost)
	}
}

func TestSendBatchHandlerErrorFailsFrame(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	boom := errors.New("apply failed")
	tr.RegisterBatch(2, func(from clock.SiteID, payloads [][]byte) error { return boom })
	if err := tr.SendBatch(1, 2, [][]byte{[]byte("a")}); !errors.Is(err, boom) {
		t.Fatalf("handler error must fail the frame, got %v", err)
	}
	if st := tr.Stats(); st.Frames != 0 || st.Delivered != 0 {
		t.Errorf("failed frame counted as delivered: %+v", st)
	}
}

func TestSendBatchUnknownSite(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	if err := tr.SendBatch(1, 9, [][]byte{[]byte("a")}); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("want ErrUnknownSite, got %v", err)
	}
}

// BenchmarkSendBatch measures the transport bookkeeping cost of one
// delivered frame (zero latency, no loss), at several frame sizes.
// allocs/op is the interesting column: the delivery path should not
// allocate per frame.
func BenchmarkSendBatch(b *testing.B) {
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("frame%d", size), func(b *testing.B) {
			tr := mustSim(b, Config{Seed: 1})
			tr.RegisterBatch(2, func(from clock.SiteID, payloads [][]byte) error { return nil })
			frame := make([][]byte, size)
			for i := range frame {
				frame[i] = []byte("0123456789abcdef0123456789abcdef")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.SendBatch(1, 2, frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
