package network

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"esr/internal/clock"
	"esr/internal/stopwatch"
	"esr/internal/trace"
)

// TCPOptions parameterizes a TCP transport instance.  One instance
// backs one process: it hosts the sites listed in Local (delivered
// in-process) and reaches every other site through the Peers address
// map.
type TCPOptions struct {
	// Listen is the address to accept peer connections on
	// ("127.0.0.1:0" picks a free port; read it back with Addr).
	Listen string
	// Local lists the sites this instance hosts.  Frames addressed to a
	// local site dispatch straight to its registered handler; everything
	// else routes through Peers.
	Local []clock.SiteID
	// Peers maps remote site IDs to "host:port" addresses.  Multiple
	// sites may share one address (a process hosting a replica site plus
	// a virtual service like the ORDUP sequencer); they share one
	// connection pool entry.  AddPeer extends the map after construction
	// (two-phase wiring when addresses are only known once every node
	// has bound its listener).
	Peers map[clock.SiteID]string
	// Seed seeds the reconnect-jitter randomness (mixed with the listen
	// address so identically-seeded nodes do not retry in lockstep).
	Seed int64
	// DialTimeout bounds one connection attempt.  Default 1s.
	DialTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the exponential backoff between
	// failed dials to one peer.  Defaults 25ms and 2s.  While a peer is
	// in backoff, sends to it fail fast with ErrUnreachable and the
	// stable-queue delivery agents retry on their own schedule.
	ReconnectMin, ReconnectMax time.Duration
	// IOTimeout bounds one request round trip (frame write to response
	// receipt).  Default 30s; a peer that stops responding fails the
	// in-flight operations so the delivery agents can back off.
	IOTimeout time.Duration
}

// TCP is a Transport over real sockets: length-prefixed versioned
// frames (see frame.go), one multiplexed connection per peer address
// with reconnect, exponential backoff and jitter, and write coalescing
// so concurrent senders share syscalls.  It implements the same
// at-least-once contract as Sim; the conformance suite runs against
// both.
type TCP struct {
	opt  TCPOptions
	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup

	mu            sync.Mutex
	handlers      map[clock.SiteID]Handler
	batchHandlers map[clock.SiteID]BatchHandler
	local         map[clock.SiteID]bool
	peers         map[clock.SiteID]string
	pool          map[string]*tcpPeer
	serverConns   map[net.Conn]bool
	partition     map[clock.SiteID]int
	down          map[clock.SiteID]bool
	stats         Stats
	met           Metrics
	ring          *trace.Ring
	rng           *rand.Rand
	closed        bool

	reqID atomic.Uint64
}

// TCP implements Transport (and its traced extension).
var (
	_ Transport       = (*TCP)(nil)
	_ TracedTransport = (*TCP)(nil)
)

// tcpResp is a response delivered to a waiting sender.
type tcpResp struct {
	status byte
	body   []byte
	err    error // transport-level failure (connection died, closed)
}

// tcpPeer is the client side of one peer address: a single multiplexed
// connection, the coalescing write buffer, and the in-flight request
// table.  mu guards every field.
type tcpPeer struct {
	t    *TCP
	addr string

	mu       sync.Mutex
	conn     net.Conn
	wbuf     *[]byte // pending frame bytes, flushed by flushLoop
	flushC   chan struct{}
	pending  map[uint64]chan tcpResp
	dialing  bool
	dialDone chan struct{} // closed when the in-progress dial resolves
	cooling  bool
	backoff  time.Duration
}

// NewTCP builds a TCP transport: it binds the listener immediately (so
// Addr is valid before any peer is wired) and starts the accept loop.
func NewTCP(opt TCPOptions) (*TCP, error) {
	if opt.Listen == "" {
		return nil, fmt.Errorf("network: TCPOptions.Listen is required")
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = time.Second
	}
	if opt.ReconnectMin <= 0 {
		opt.ReconnectMin = 25 * time.Millisecond
	}
	if opt.ReconnectMax <= 0 {
		opt.ReconnectMax = 2 * time.Second
	}
	if opt.IOTimeout <= 0 {
		opt.IOTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", opt.Listen)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", opt.Listen, err)
	}
	t := &TCP{
		opt:           opt,
		ln:            ln,
		done:          make(chan struct{}),
		handlers:      make(map[clock.SiteID]Handler),
		batchHandlers: make(map[clock.SiteID]BatchHandler),
		local:         make(map[clock.SiteID]bool, len(opt.Local)),
		peers:         make(map[clock.SiteID]string, len(opt.Peers)),
		pool:          make(map[string]*tcpPeer),
		serverConns:   make(map[net.Conn]bool),
		partition:     make(map[clock.SiteID]int),
		down:          make(map[clock.SiteID]bool),
	}
	for _, s := range opt.Local {
		t.local[s] = true
	}
	for s, a := range opt.Peers {
		t.peers[s] = a
	}
	h := fnv.New64a()
	h.Write([]byte(ln.Addr().String()))
	t.rng = rand.New(rand.NewSource(opt.Seed ^ int64(h.Sum64())))
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// AddPeer maps a remote site to its address after construction.
func (t *TCP) AddPeer(site clock.SiteID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[site] = addr
}

// Register installs the message handler for a site hosted here.
func (t *TCP) Register(site clock.SiteID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[site] = h
}

// RegisterBatch installs the frame handler for a site hosted here.
func (t *TCP) RegisterBatch(site clock.SiteID, h BatchHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batchHandlers[site] = h
}

// SetMetrics installs instrumentation.  Call before concurrent use.
func (t *TCP) SetMetrics(m Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.met = m
}

// SetTrace installs the trace ring: outgoing frames carry its causal
// stamp, inbound frames merge theirs into it, and frame-level
// net-send/net-recv spans are recorded.  Call before concurrent use.
func (t *TCP) SetTrace(r *trace.Ring) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = r
}

// Stats returns a snapshot of the cumulative transport statistics.
func (t *TCP) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Partition splits the sites into groups from this instance's point of
// view: outbound messages across groups fail with ErrPartitioned, and
// inbound frames across groups are rejected the same way.
func (t *TCP) Partition(groups ...[]clock.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partition = make(map[clock.SiteID]int)
	for g, sites := range groups {
		for _, s := range sites {
			t.partition[s] = g
		}
	}
}

// Heal removes all partitions.
func (t *TCP) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partition = make(map[clock.SiteID]int)
}

// Reachable reports whether a and b are in the same partition and both
// up, from this instance's point of view.
func (t *TCP) Reachable(a, b clock.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partition[a] == t.partition[b] && !t.down[a] && !t.down[b]
}

// Crash marks a site as down: messages to and from it fail with
// ErrSiteDown until Restart, and inbound frames addressed to it are
// rejected.
func (t *TCP) Crash(site clock.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[site] = true
}

// Restart marks a crashed site as up again.
func (t *TCP) Restart(site clock.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.down, site)
}

// Close shuts the transport down gracefully: the listener stops, every
// connection closes, in-flight operations fail with ErrClosed, and all
// goroutines join before Close returns.  Idempotent.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.ln.Close()
	for c := range t.serverConns {
		c.Close()
	}
	pool := make([]*tcpPeer, 0, len(t.pool))
	for _, p := range t.pool {
		pool = append(pool, p)
	}
	t.mu.Unlock()
	for _, p := range pool {
		p.mu.Lock()
		c := p.conn
		p.conn = nil
		p.mu.Unlock()
		if c != nil {
			c.Close()
		}
		p.failPending(ErrClosed)
	}
	t.wg.Wait()
	return nil
}

// Send delivers a one-way message.  nil means the destination handler
// ran and succeeded (the implicit acknowledgement over the response
// frame); any error means the message must be retried by the caller.
func (t *TCP) Send(from, to clock.SiteID, payload []byte) error {
	_, err := t.roundTrip(frameSend, from, to, payload, nil, nil, TraceContext{})
	return err
}

// SendTraced is Send carrying a causal trace context in the frame.
func (t *TCP) SendTraced(from, to clock.SiteID, payload []byte, tc TraceContext) error {
	_, err := t.roundTrip(frameSend, from, to, payload, nil, nil, tc)
	return err
}

// Call performs a synchronous round trip and returns the handler's
// response payload.
func (t *TCP) Call(from, to clock.SiteID, payload []byte) ([]byte, error) {
	return t.roundTrip(frameCall, from, to, payload, nil, nil, TraceContext{})
}

// SendBatch delivers a whole frame of messages in one network transit,
// acknowledged by a single response — the SendBatch framing carried
// verbatim onto the wire.  All-or-nothing: any error retries the whole
// batch and receiver dedup absorbs repeats.
func (t *TCP) SendBatch(from, to clock.SiteID, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	_, err := t.roundTrip(frameBatch, from, to, nil, payloads, nil, TraceContext{})
	return err
}

// SendBatchTraced is SendBatch carrying a causal trace context plus
// the per-message MSet identities in the frame body.
func (t *TCP) SendBatchTraced(from, to clock.SiteID, payloads [][]byte, ids []uint64, tc TraceContext) error {
	if len(payloads) == 0 {
		return nil
	}
	_, err := t.roundTrip(frameBatch, from, to, nil, payloads, ids, tc)
	return err
}

// roundTrip is the shared send path: local-view fault checks, then
// either in-process dispatch (local destination) or one framed request
// over the peer's pooled connection.
func (t *TCP) roundTrip(kind byte, from, to clock.SiteID, payload []byte, batch [][]byte, ids []uint64, tc TraceContext) ([]byte, error) {
	n := uint64(1)
	if kind == frameBatch {
		n = uint64(len(batch))
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.stats.Sent += n
	t.met.Sent.Add(n)
	partitioned := t.partition[from] != t.partition[to]
	isDown := t.down[from] || t.down[to]
	isLocal := t.local[to]
	addr := t.peers[to]
	ring := t.ring
	t.mu.Unlock()
	if ring != nil && tc.Stamp == 0 {
		// Every frame carries the sender's causal stamp, even untraced
		// ones, so receiver-side events order after sender-side ones.
		tc.Stamp = ring.Stamp()
	}
	if partitioned {
		t.count(func(s *Stats) { s.Partitioned += n })
		t.met.Partitioned.Add(n)
		return nil, ErrPartitioned
	}
	if isDown {
		return nil, ErrSiteDown
	}
	if isLocal {
		return t.dispatchLocal(kind, from, to, payload, batch, n)
	}
	if addr == "" {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSite, to)
	}

	p := t.peer(addr)
	if err := p.ensureConn(); err != nil {
		return nil, err
	}
	req := t.reqID.Add(1)
	ch := make(chan tcpResp, 1)

	buf := getFrameBuf()
	b := appendFrameHeader(*buf, kind, req, from, to, tc)
	if kind == frameBatch {
		b = appendBatchBody(b, batch, ids)
	} else {
		b = append(b, payload...)
	}
	finishFrame(b, 0)
	*buf = b

	sw := stopwatch.Start()
	if err := p.submit(req, ch, *buf); err != nil {
		putFrameBuf(buf)
		return nil, err
	}
	putFrameBuf(buf)

	timer := time.NewTimer(t.opt.IOTimeout)
	defer timer.Stop()
	var r tcpResp
	select {
	case r = <-ch:
	case <-t.done:
		p.forget(req)
		return nil, ErrClosed
	case <-timer.C:
		p.forget(req)
		return nil, fmt.Errorf("%w: %s: no response within %v", ErrUnreachable, addr, t.opt.IOTimeout)
	}
	t.met.LatencySeconds.Observe(int64(sw.Elapsed()))
	if r.err != nil {
		return nil, r.err
	}
	if r.status != respOK {
		if r.status == respPartitioned {
			t.count(func(s *Stats) { s.Partitioned += n })
			t.met.Partitioned.Add(n)
		}
		return nil, respError(r.status, r.body)
	}
	if ring != nil && kind != frameCall {
		// The span covers write → acknowledged response: the remote
		// handler has durably accepted the payload(s).
		ring.RecordSpan(trace.NetSend, int(from), "", tc.MSet, sw.Began(), fmt.Sprintf("to=%d n=%d", to, n))
	}
	return r.body, nil
}

// dispatchLocal short-circuits a frame addressed to a site hosted by
// this very instance: no socket, no codec, same contract and counters.
func (t *TCP) dispatchLocal(kind byte, from, to clock.SiteID, payload []byte, batch [][]byte, n uint64) ([]byte, error) {
	sw := stopwatch.Start()
	t.mu.Lock()
	h := t.handlers[to]
	bh := t.batchHandlers[to]
	t.mu.Unlock()
	if h == nil && bh == nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSite, to)
	}
	var resp []byte
	var bytes uint64
	switch kind {
	case frameBatch:
		for _, p := range batch {
			bytes += uint64(len(p))
		}
		if bh != nil {
			if err := bh(from, batch); err != nil {
				return nil, err
			}
		} else {
			for _, p := range batch {
				if _, err := h(from, p); err != nil {
					return nil, err
				}
			}
		}
	default:
		if h == nil {
			return nil, fmt.Errorf("%w: %v (no per-message handler)", ErrUnknownSite, to)
		}
		r, err := h(from, payload)
		if err != nil {
			return nil, err
		}
		resp = r
		bytes = uint64(len(payload))
	}
	t.met.LatencySeconds.Observe(int64(sw.Elapsed()))
	t.count(func(s *Stats) {
		s.Delivered += n
		s.Bytes += bytes
		if kind == frameBatch {
			s.Frames++
		}
	})
	t.met.Delivered.Add(n)
	t.met.Bytes.Add(bytes)
	if kind == frameBatch {
		t.met.Frames.Inc()
	}
	return resp, nil
}

// peer returns (creating if needed) the pool entry for an address.
func (t *TCP) peer(addr string) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pool[addr]
	if !ok {
		p = &tcpPeer{
			t:       t,
			addr:    addr,
			flushC:  make(chan struct{}, 1),
			pending: make(map[uint64]chan tcpResp),
			backoff: t.opt.ReconnectMin,
		}
		t.pool[addr] = p
		t.wg.Add(1)
		go p.flushLoop()
	}
	return p
}

// ensureConn returns once the peer has a live connection, dialing if
// necessary.  Concurrent callers share one dial (they wait for it to
// resolve rather than stampeding the peer); while the peer is in
// reconnect backoff, callers fail fast with ErrUnreachable — the
// stable-queue delivery agents own the retry cadence.
func (p *tcpPeer) ensureConn() error {
	for {
		p.mu.Lock()
		if p.conn != nil {
			p.mu.Unlock()
			return nil
		}
		if p.cooling {
			p.mu.Unlock()
			return fmt.Errorf("%w: %s (reconnect backoff)", ErrUnreachable, p.addr)
		}
		if p.dialing {
			done := p.dialDone
			p.mu.Unlock()
			select {
			case <-done:
				continue // re-check: connected, cooling, or retry
			case <-p.t.done:
				return ErrClosed
			}
		}
		p.dialing = true
		p.dialDone = make(chan struct{})
		p.mu.Unlock()
		break
	}

	c, err := net.DialTimeout("tcp", p.addr, p.t.opt.DialTimeout)
	p.mu.Lock()
	p.dialing = false
	close(p.dialDone)
	if err != nil {
		d := p.backoff
		p.backoff *= 2
		if p.backoff > p.t.opt.ReconnectMax {
			p.backoff = p.t.opt.ReconnectMax
		}
		p.cooling = true
		p.mu.Unlock()
		p.t.wg.Add(1)
		go p.cooldown(p.t.jitter(d))
		// A refused or timed-out dial is the remote-process analogue of
		// ErrSiteDown: the peer may be mid-restart.  Carry the
		// ErrUnreachable sentinel (like every other lost-connection
		// path here) so retry agents and the sequencer client keep
		// trying instead of treating a restarting peer as fatal.
		return fmt.Errorf("%w: dial %s: %v", ErrUnreachable, p.addr, err)
	}
	select {
	case <-p.t.done:
		p.mu.Unlock()
		c.Close()
		return ErrClosed
	default:
	}
	p.conn = c
	p.backoff = p.t.opt.ReconnectMin
	p.t.wg.Add(1)
	go p.readLoop(c)
	p.mu.Unlock()
	p.t.count(func(s *Stats) { s.Dials++ })
	return nil
}

// cooldown holds the peer in backoff for d, then allows the next dial.
func (p *tcpPeer) cooldown(d time.Duration) {
	defer p.t.wg.Done()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-p.t.done:
	case <-timer.C:
	}
	p.mu.Lock()
	p.cooling = false
	p.mu.Unlock()
}

// jitter spreads a backoff delay over [d/2, 3d/2) so peers sharing a
// seed do not reconnect in lockstep.
func (t *TCP) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	t.mu.Lock()
	j := time.Duration(t.rng.Int63n(int64(d)))
	t.mu.Unlock()
	return d/2 + j
}

// submit registers the in-flight request and appends its frame to the
// coalescing write buffer, waking the flusher.  The registration and
// the append are atomic under the peer mutex, so a connection failure
// either rejects the submit outright or fails the pending entry —
// never neither.
func (p *tcpPeer) submit(req uint64, ch chan tcpResp, frameBytes []byte) error {
	p.mu.Lock()
	if p.conn == nil {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s (connection lost)", ErrUnreachable, p.addr)
	}
	p.pending[req] = ch
	if p.wbuf == nil {
		p.wbuf = getFrameBuf()
	}
	*p.wbuf = append(*p.wbuf, frameBytes...)
	p.mu.Unlock()
	select {
	case p.flushC <- struct{}{}:
	default:
	}
	return nil
}

// forget drops an in-flight request (timeout, shutdown); a late
// response for it is discarded by readLoop.
func (p *tcpPeer) forget(req uint64) {
	p.mu.Lock()
	delete(p.pending, req)
	p.mu.Unlock()
}

// flushLoop is the peer's single writer: it swaps out the coalescing
// buffer and writes it in one syscall, so concurrent senders that
// submitted while a flush was in flight share the next one.
func (p *tcpPeer) flushLoop() {
	defer p.t.wg.Done()
	for {
		select {
		case <-p.t.done:
			return
		case <-p.flushC:
		}
		p.mu.Lock()
		buf := p.wbuf
		p.wbuf = nil
		c := p.conn
		p.mu.Unlock()
		if buf == nil {
			continue
		}
		if c == nil {
			// Connection died between submit and flush; the pending
			// entries were already failed by readLoop.
			putFrameBuf(buf)
			continue
		}
		_, err := c.Write(*buf)
		putFrameBuf(buf)
		if err != nil {
			p.fail(c, fmt.Errorf("%w: %s: %v", ErrUnreachable, p.addr, err))
		}
	}
}

// readLoop decodes response frames off one connection and resolves the
// matching in-flight requests.  Any read error (including Close tearing
// the socket down) fails the connection and every pending request.
func (p *tcpPeer) readLoop(c net.Conn) {
	defer p.t.wg.Done()
	p.t.mu.Lock()
	ring := p.t.ring
	p.t.mu.Unlock()
	br := bufio.NewReaderSize(c, 64<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			p.fail(c, fmt.Errorf("%w: %s: %v", ErrUnreachable, p.addr, err))
			return
		}
		if f.kind != frameResp || len(f.body) < 1 {
			continue
		}
		// A response carries the remote's causal stamp; merging it means
		// the caller's next events order after the work the call caused.
		ring.ObserveStamp(f.tc.Stamp)
		p.mu.Lock()
		ch := p.pending[f.req]
		delete(p.pending, f.req)
		p.mu.Unlock()
		if ch != nil {
			ch <- tcpResp{status: f.body[0], body: f.body[1:]}
		}
	}
}

// fail tears a connection down and fails every request in flight on it.
func (p *tcpPeer) fail(c net.Conn, err error) {
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.mu.Unlock()
	c.Close()
	p.failPending(err)
}

// failPending resolves every in-flight request with err.
func (p *tcpPeer) failPending(err error) {
	p.mu.Lock()
	pend := p.pending
	p.pending = make(map[uint64]chan tcpResp)
	p.mu.Unlock()
	for _, ch := range pend {
		ch <- tcpResp{err: err}
	}
}

// acceptLoop accepts peer connections until the listener closes.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
			default:
			}
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.serverConns[c] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

// serveConn is the server side of one inbound connection: it decodes
// request frames, dispatches them to the registered handlers serially
// (per-connection FIFO, which preserves a peer's send order), and
// writes one response frame per request.  An unknown codec version
// closes the connection — framing beyond it cannot be trusted.
func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.serverConns, c)
		t.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	t.mu.Lock()
	ring := t.ring
	t.mu.Unlock()
	for {
		f, err := readFrame(br)
		if err != nil {
			return // EOF, codec mismatch, or torn frame: drop the conn
		}
		status, body := t.dispatchRemote(f)
		// The response carries this process's causal stamp back, so the
		// sender's later events order after work its frame caused here.
		rtc := TraceContext{Stamp: ring.Stamp()}
		buf := getFrameBuf()
		b := appendFrameHeader(*buf, frameResp, f.req, f.to, f.from, rtc)
		b = append(b, status)
		b = append(b, body...)
		finishFrame(b, 0)
		*buf = b
		_, werr := bw.Write(*buf)
		if werr == nil && br.Buffered() == 0 {
			// Coalesce responses: only flush when no further request is
			// already waiting in the read buffer.
			werr = bw.Flush()
		}
		putFrameBuf(buf)
		if werr != nil {
			return
		}
	}
}

// dispatchRemote runs one inbound frame against this instance's local
// view: fault hooks first, then the destination handler.
func (t *TCP) dispatchRemote(f frame) (status byte, body []byte) {
	n := uint64(1)
	t.mu.Lock()
	partitioned := t.partition[f.from] != t.partition[f.to]
	isDown := t.down[f.from] || t.down[f.to]
	h := t.handlers[f.to]
	bh := t.batchHandlers[f.to]
	ring := t.ring
	t.mu.Unlock()
	// Merge the sender's causal stamp before any handler records
	// events, so everything this frame causes stamps after its sender.
	ring.ObserveStamp(f.tc.Stamp)
	if partitioned {
		t.count(func(s *Stats) { s.Partitioned++ })
		t.met.Partitioned.Inc()
		return respPartitioned, nil
	}
	if isDown {
		return respSiteDown, nil
	}
	if h == nil && bh == nil {
		return respUnknownSite, []byte(fmt.Sprintf("%v", f.to))
	}
	var bytes uint64
	switch f.kind {
	case frameBatch:
		payloads, _, err := splitBatchBody(f.body, f.ver)
		if err != nil {
			return respErr, []byte(err.Error())
		}
		n = uint64(len(payloads))
		for _, p := range payloads {
			bytes += uint64(len(p))
		}
		if bh != nil {
			if err := bh(f.from, payloads); err != nil {
				return respErr, []byte(err.Error())
			}
		} else {
			for _, p := range payloads {
				if _, err := h(f.from, p); err != nil {
					return respErr, []byte(err.Error())
				}
			}
		}
	case frameSend, frameCall:
		if h == nil {
			return respUnknownSite, []byte(fmt.Sprintf("%v (no per-message handler)", f.to))
		}
		r, err := h(f.from, f.body)
		if err != nil {
			return respErr, []byte(err.Error())
		}
		body = r
		bytes = uint64(len(f.body))
	default:
		return respErr, []byte(fmt.Sprintf("network: unknown frame kind %d", f.kind))
	}
	t.count(func(s *Stats) {
		s.Delivered += n
		s.Bytes += bytes
		if f.kind == frameBatch {
			s.Frames++
		}
	})
	t.met.Delivered.Add(n)
	t.met.Bytes.Add(bytes)
	if f.kind == frameBatch {
		t.met.Frames.Inc()
	}
	if ring != nil && f.kind != frameCall {
		ring.RecordMSetf(trace.NetRecv, int(f.to), "", f.tc.MSet, "from=%d n=%d", f.from, n)
	}
	return respOK, body
}

func (t *TCP) count(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}
