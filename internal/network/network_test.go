package network

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"esr/internal/clock"
)

// mustSim builds a simulator transport or aborts the test.
func mustSim(tb testing.TB, cfg Config) *Sim {
	tb.Helper()
	tr, err := New(cfg)
	if err != nil {
		tb.Fatalf("New(%+v): %v", cfg, err)
	}
	return tr
}

func echoHandler(calls *atomic.Int64) Handler {
	return func(from clock.SiteID, payload []byte) ([]byte, error) {
		if calls != nil {
			calls.Add(1)
		}
		return payload, nil
	}
}

func TestSendDelivers(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	var calls atomic.Int64
	tr.Register(2, echoHandler(&calls))
	if err := tr.Send(1, 2, []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("handler called %d times, want 1", calls.Load())
	}
	st := tr.Stats()
	if st.Delivered != 1 || st.Bytes != 5 {
		t.Errorf("stats = %+v, want Delivered=1 Bytes=5", st)
	}
}

func TestCallRoundTrip(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	tr.Register(2, func(from clock.SiteID, p []byte) ([]byte, error) {
		return append([]byte("re:"), p...), nil
	})
	resp, err := tr.Call(1, 2, []byte("q"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "re:q" {
		t.Errorf("Call response = %q, want %q", resp, "re:q")
	}
}

func TestUnknownSite(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	if err := tr.Send(1, 9, nil); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("Send to unknown site = %v, want ErrUnknownSite", err)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	var calls atomic.Int64
	tr.Register(1, echoHandler(nil))
	tr.Register(2, echoHandler(&calls))
	tr.Register(3, echoHandler(&calls))

	tr.Partition([]clock.SiteID{1}, []clock.SiteID{2, 3})
	if err := tr.Send(1, 2, nil); !errors.Is(err, ErrPartitioned) {
		t.Errorf("cross-partition Send = %v, want ErrPartitioned", err)
	}
	if !tr.Reachable(2, 3) {
		t.Errorf("sites in the same partition must be reachable")
	}
	if tr.Reachable(1, 2) {
		t.Errorf("sites in different partitions must not be reachable")
	}
	if err := tr.Send(2, 3, nil); err != nil {
		t.Errorf("intra-partition Send = %v, want nil", err)
	}

	tr.Heal()
	if err := tr.Send(1, 2, nil); err != nil {
		t.Errorf("Send after Heal = %v, want nil", err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	tr.Register(2, echoHandler(nil))
	tr.Crash(2)
	if err := tr.Send(1, 2, nil); !errors.Is(err, ErrSiteDown) {
		t.Errorf("Send to crashed site = %v, want ErrSiteDown", err)
	}
	if tr.Reachable(1, 2) {
		t.Errorf("crashed site must be unreachable")
	}
	tr.Restart(2)
	if err := tr.Send(1, 2, nil); err != nil {
		t.Errorf("Send after Restart = %v, want nil", err)
	}
}

func TestLossRateDropsSome(t *testing.T) {
	tr := mustSim(t, Config{Seed: 7, LossRate: 0.5})
	tr.Register(2, echoHandler(nil))
	var lost, ok int
	for i := 0; i < 200; i++ {
		if err := tr.Send(1, 2, []byte{1}); errors.Is(err, ErrLost) {
			lost++
		} else if err == nil {
			ok++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if lost == 0 || ok == 0 {
		t.Errorf("with LossRate=0.5 expected both outcomes, got lost=%d ok=%d", lost, ok)
	}
	st := tr.Stats()
	if st.Lost != uint64(lost) || st.Delivered != uint64(ok) {
		t.Errorf("stats %+v disagree with observed lost=%d ok=%d", st, lost, ok)
	}
}

func TestLatencyApplied(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1, MinLatency: 5 * time.Millisecond, MaxLatency: 5 * time.Millisecond})
	tr.Register(2, echoHandler(nil))
	start := time.Now()
	if err := tr.Send(1, 2, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("Send took %v, want >= 5ms one-way latency", d)
	}
	start = time.Now()
	if _, err := tr.Call(1, 2, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("Call took %v, want >= 10ms round trip", d)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	errBoom := errors.New("boom")
	tr.Register(2, func(clock.SiteID, []byte) ([]byte, error) { return nil, errBoom })
	if err := tr.Send(1, 2, nil); !errors.Is(err, errBoom) {
		t.Errorf("Send = %v, want handler error", err)
	}
	st := tr.Stats()
	if st.Delivered != 0 {
		t.Errorf("failed handler must not count as delivered: %+v", st)
	}
}

func TestConcurrentSends(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1, MinLatency: time.Microsecond, MaxLatency: 100 * time.Microsecond})
	var calls atomic.Int64
	for s := clock.SiteID(1); s <= 4; s++ {
		tr.Register(s, echoHandler(&calls))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				from := clock.SiteID(g%4 + 1)
				to := clock.SiteID((g+1)%4 + 1)
				if err := tr.Send(from, to, []byte{byte(i)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if calls.Load() != 400 {
		t.Errorf("delivered %d, want 400", calls.Load())
	}
}

func TestDeterministicLatencySampling(t *testing.T) {
	sample := func() []time.Duration {
		tr := mustSim(t, Config{Seed: 99, MinLatency: time.Millisecond, MaxLatency: 10 * time.Millisecond})
		var out []time.Duration
		for i := 0; i < 20; i++ {
			tr.mu.Lock()
			out = append(out, tr.sampleLatencyLocked())
			tr.mu.Unlock()
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different latency sequences at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond || a[i] >= 10*time.Millisecond {
			t.Fatalf("latency %v out of configured range", a[i])
		}
	}
}

func TestPartitionUnmentionedSitesStayInGroupZero(t *testing.T) {
	tr := mustSim(t, Config{Seed: 1})
	for s := clock.SiteID(1); s <= 3; s++ {
		tr.Register(s, echoHandler(nil))
	}
	tr.Partition([]clock.SiteID{1}, []clock.SiteID{2}) // site 3 unmentioned → group 0 with site 1
	if !tr.Reachable(1, 3) {
		t.Errorf("unmentioned site should share group 0 with first group")
	}
	if tr.Reachable(2, 3) {
		t.Errorf("site 2 is isolated from group 0")
	}
}
