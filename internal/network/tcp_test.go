package network

// TCP-specific behavior: wire-format versioning, reconnection after a
// peer restart, remote error mapping, and configuration validation —
// everything the shared conformance suite cannot express because it is
// particular to real sockets.

import (
	"errors"
	"net"
	"testing"
	"time"

	"esr/internal/clock"
)

// tcpPair builds two connected single-site instances (1 and 2) and
// registers a trivial handler at site 2.
func tcpPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(TCPOptions{Listen: "127.0.0.1:0", Local: []clock.SiteID{1}, Seed: 1})
	if err != nil {
		t.Fatalf("NewTCP(a): %v", err)
	}
	b, err := NewTCP(TCPOptions{Listen: "127.0.0.1:0", Local: []clock.SiteID{2}, Seed: 2})
	if err != nil {
		a.Close()
		t.Fatalf("NewTCP(b): %v", err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"ordered latencies", Config{MinLatency: time.Millisecond, MaxLatency: 2 * time.Millisecond}, true},
		{"inverted latencies", Config{MinLatency: 2 * time.Millisecond, MaxLatency: time.Millisecond}, false},
		{"negative min", Config{MinLatency: -time.Millisecond}, false},
		{"negative max", Config{MaxLatency: -time.Millisecond}, false},
		{"loss one", Config{LossRate: 1}, true},
		{"loss above one", Config{LossRate: 1.01}, false},
		{"loss negative", Config{LossRate: -0.1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.cfg, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tc.cfg)
			}
			if _, nerr := New(tc.cfg); (nerr == nil) != tc.ok {
				t.Errorf("New(%+v) error = %v, want ok=%v", tc.cfg, nerr, tc.ok)
			}
		})
	}
}

// TestTCPUnknownCodecVersionRejected feeds the server a frame with a
// future codec version: the connection must be dropped (framing beyond
// an unknown codec cannot be trusted) without hurting the transport,
// and the decoder must surface the typed error.
func TestTCPUnknownCodecVersionRejected(t *testing.T) {
	a, b := tcpPair(t)
	b.Register(2, func(clock.SiteID, []byte) ([]byte, error) { return nil, nil })

	raw, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	bad := appendFrameHeader(nil, frameSend, 1, 9, 2, TraceContext{})
	finishFrame(bad, 0)
	bad[0] = CodecVersion + 41 // future codec
	if _, err := raw.Write(bad); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Error("server kept the connection open after an unknown codec version")
	}

	// The transport itself is unharmed: a well-formed send still works.
	if err := a.Send(1, 2, []byte("ok")); err != nil {
		t.Errorf("Send after codec-version rejection: %v", err)
	}

	// And the decoder reports the typed error for programmatic handling.
	var cve *CodecVersionError
	if _, err := readFrame(bytesReader(bad)); !errors.As(err, &cve) {
		t.Fatalf("readFrame = %v, want *CodecVersionError", err)
	} else if cve.Got != CodecVersion+41 {
		t.Errorf("CodecVersionError.Got = %d, want %d", cve.Got, CodecVersion+41)
	}
}

// bytesReader avoids importing bytes for one helper.
type byteSliceReader struct{ b []byte }

func bytesReader(b []byte) *byteSliceReader { return &byteSliceReader{b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// TestTCPReconnectAfterPeerRestart kills the receiving process
// (transport instance) and brings a new one up on the same address: the
// sender's pooled connection fails, enters backoff, and a retry loop —
// the delivery agents in miniature — reconnects and delivers.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := tcpPair(t)
	b.Register(2, func(clock.SiteID, []byte) ([]byte, error) { return nil, nil })
	if err := a.Send(1, 2, []byte("before")); err != nil {
		t.Fatalf("Send before restart: %v", err)
	}
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatalf("Close(b): %v", err)
	}

	// The peer is gone: sends must fail (connection loss now, dial
	// failures while the port is free), never hang.
	if err := a.Send(1, 2, []byte("during")); err == nil {
		t.Fatal("Send to a dead peer returned nil")
	}

	b2, err := NewTCP(TCPOptions{Listen: addr, Local: []clock.SiteID{2}, Seed: 3})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer b2.Close()
	var redelivered int
	b2.Register(2, func(_ clock.SiteID, p []byte) ([]byte, error) {
		redelivered++
		return nil, nil
	})

	// Retry until the backoff window passes and the dial succeeds.
	deadline := time.After(10 * time.Second)
	for {
		if err := a.Send(1, 2, []byte("after")); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sender never reconnected to the restarted peer")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if redelivered == 0 {
		t.Error("restarted peer saw no deliveries")
	}
	if st := a.Stats(); st.Dials < 2 {
		t.Errorf("Dials = %d, want >= 2 (initial connect + reconnect)", st.Dials)
	}
}

// TestTCPRemoteHandlerErrorMapping: a destination-side handler error
// crosses the wire as a RemoteError carrying the original text.
func TestTCPRemoteHandlerErrorMapping(t *testing.T) {
	a, b := tcpPair(t)
	b.Register(2, func(clock.SiteID, []byte) ([]byte, error) {
		return nil, errors.New("apply rejected: lock conflict")
	})
	err := a.Send(1, 2, []byte("x"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Send = %v, want *RemoteError", err)
	}
	if re.Msg != "apply rejected: lock conflict" {
		t.Errorf("RemoteError.Msg = %q, want the handler's text", re.Msg)
	}
}

// TestTCPSharedAddressHostsMultipleSites models an esrnode process that
// hosts a replica site plus the virtual order server: two site IDs, one
// address, one connection pool entry.
func TestTCPSharedAddressHostsMultipleSites(t *testing.T) {
	a, b := tcpPair(t)
	const virtual = clock.SiteID(1000)
	b.mu.Lock()
	b.local[virtual] = true
	b.mu.Unlock()
	b.Register(2, func(clock.SiteID, []byte) ([]byte, error) { return []byte("site"), nil })
	b.Register(virtual, func(clock.SiteID, []byte) ([]byte, error) { return []byte("seq"), nil })
	a.AddPeer(virtual, b.Addr())

	if resp, err := a.Call(1, 2, nil); err != nil || string(resp) != "site" {
		t.Fatalf("Call site 2 = %q, %v", resp, err)
	}
	if resp, err := a.Call(1, virtual, nil); err != nil || string(resp) != "seq" {
		t.Fatalf("Call virtual site = %q, %v", resp, err)
	}
	if st := a.Stats(); st.Dials != 1 {
		t.Errorf("Dials = %d, want 1 (both sites share the pooled connection)", st.Dials)
	}
}

func TestTCPListenRequired(t *testing.T) {
	if _, err := NewTCP(TCPOptions{}); err == nil {
		t.Fatal("NewTCP without Listen succeeded, want error")
	}
}
