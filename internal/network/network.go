// Package network is the message transport underneath replica control.
//
// The paper's model (§2.2) is "a number of sites connected by a network,
// where both individual sites and network links may fail" and the methods
// must be "robust in face of very slow links, network partitions, and site
// failures".  The package defines the Transport interface the rest of the
// system (core, the replica chassis, the experiment harness and the esr
// facade) depends on, plus two implementations:
//
//   - Sim, the in-process simulator with seeded, configurable per-message
//     latency, transient message loss, and explicit network partitions —
//     the deterministic default every experiment runs on; and
//   - TCP, a real transport on the standard library's net package with
//     length-prefixed versioned frames and per-peer connection pools, so
//     a cluster of cmd/esrnode processes spans machine boundaries.
//
// Message loss, partitions and connection failures surface as Send/Call
// errors, which the stable-queue delivery agents mask by retrying,
// exactly as the paper prescribes.  Delivery is therefore at-least-once:
// receivers own deduplication (the replica layer's seen-set), never the
// transport.
package network

import (
	"errors"
	"fmt"
	"time"

	"esr/internal/clock"
	"esr/internal/metrics"
	"esr/internal/trace"
)

// Errors returned by Send, Call and SendBatch.  All are transient: the
// caller is expected to retry (stable-queue semantics).  The TCP
// transport maps these across the wire, so errors.Is works identically
// against both implementations.
var (
	// ErrPartitioned reports that the source and destination are in
	// different partitions.
	ErrPartitioned = errors.New("network: sites partitioned")
	// ErrLost reports that the message was dropped en route.
	ErrLost = errors.New("network: message lost")
	// ErrUnknownSite reports a destination with no registered handler
	// and no known peer address.
	ErrUnknownSite = errors.New("network: unknown site")
	// ErrSiteDown reports that the destination site is crashed.
	ErrSiteDown = errors.New("network: site down")
	// ErrClosed reports an operation on a closed transport.
	ErrClosed = errors.New("network: transport closed")
	// ErrUnreachable reports that the peer's connection is down and a
	// reconnect attempt is pending (dial backoff).  Retry later.
	ErrUnreachable = errors.New("network: peer unreachable")
)

// RemoteError is a destination-side failure relayed back over a real
// transport: the remote handler (or the remote transport's dispatch)
// rejected the message.  The sender retries exactly as it would for a
// local handler error.
type RemoteError struct {
	// Msg is the remote error text.
	Msg string
}

func (e *RemoteError) Error() string { return "network: remote: " + e.Msg }

// Transient reports whether a Send/Call/SendBatch failure is worth
// retrying: the fault sentinels above (crash, partition, loss, dial
// backoff) plus ErrUnknownSite, which during a rolling restart means
// "the peer has not registered its handler yet".  Everything else —
// encode failures, protocol violations, a closed transport — is
// permanent and retrying it can only repeat the failure.  RemoteError
// is not transient: the message reached the destination and its handler
// rejected it, so the request itself is at fault.
func Transient(err error) bool {
	return errors.Is(err, ErrPartitioned) ||
		errors.Is(err, ErrLost) ||
		errors.Is(err, ErrSiteDown) ||
		errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrUnknownSite)
}

// Handler processes an incoming message at a site and returns a response
// payload (may be nil for one-way messages) or an error, which is
// propagated to the sender as a failed delivery.
type Handler func(from clock.SiteID, payload []byte) ([]byte, error)

// BatchHandler processes a whole frame of messages delivered together by
// SendBatch.  An error fails the entire frame: the sender retries all of
// it, and receiver-side dedup absorbs the duplicates (at-least-once).
type BatchHandler func(from clock.SiteID, payloads [][]byte) error

// Transport connects a set of sites.  Implementations are safe for
// concurrent use.
//
// The contract every implementation (and the conformance suite in
// conformance_test.go) holds to:
//
//   - Send returns nil only after the destination handler ran and
//     succeeded — the implicit acknowledgement.  Any error means the
//     message may or may not have been delivered and must be retried;
//     the receiver's dedup absorbs repeats (at-least-once).
//   - SendBatch is all-or-nothing per frame: one transit covers the
//     whole batch, an error retries the whole batch.  When the
//     destination has no batch handler the frame falls back to its
//     per-message handler, still as one transit.
//   - Call is a synchronous round trip returning the handler's response.
//   - Partition/Heal/Crash/Restart are fault-injection hooks.  The
//     simulator applies them to the whole (in-process) network; a
//     distributed transport applies them to this instance's local view,
//     which is what tests and operators hold a handle to.
type Transport interface {
	// Send delivers a one-way message; nil means the destination handler
	// ran and succeeded.
	Send(from, to clock.SiteID, payload []byte) error
	// Call performs a synchronous round trip and returns the handler's
	// response payload.
	Call(from, to clock.SiteID, payload []byte) ([]byte, error)
	// SendBatch delivers a whole frame of messages in one transit,
	// all-or-nothing.
	SendBatch(from, to clock.SiteID, payloads [][]byte) error
	// Register installs the message handler for a site hosted behind
	// this transport.  Re-registering replaces the handler (crashed-site
	// restart).
	Register(site clock.SiteID, h Handler)
	// RegisterBatch installs the frame handler for a site, used by
	// SendBatch.
	RegisterBatch(site clock.SiteID, h BatchHandler)
	// SetMetrics installs instrumentation.  Call before concurrent use.
	SetMetrics(m Metrics)
	// Stats returns a snapshot of the cumulative transport statistics.
	Stats() Stats
	// Partition splits the sites into groups; messages between different
	// groups fail with ErrPartitioned until Heal.
	Partition(groups ...[]clock.SiteID)
	// Heal removes all partitions.
	Heal()
	// Reachable reports whether a and b are in the same partition and
	// both up, from this transport's point of view.
	Reachable(a, b clock.SiteID) bool
	// Crash marks a site as down; messages to and from it fail with
	// ErrSiteDown until Restart.
	Crash(site clock.SiteID)
	// Restart marks a crashed site as up again.
	Restart(site clock.SiteID)
	// Close shuts the transport down; in-flight operations fail with
	// ErrClosed.  Close is idempotent.
	Close() error
}

// TracedTransport is the optional causal-tracing extension of
// Transport, implemented by both Sim and TCP.  A traced transport
// carries a TraceContext — (origin site, MSet message identity,
// causal stamp) — with every frame (TCP puts it on the wire, codec
// v2; the in-process simulator shares the ring directly), merges
// inbound stamps into the installed ring, and records frame-level
// net-send/net-recv spans.  It is deliberately not part of Transport:
// test fakes and future transports stay valid without it, and callers
// route through SendCtx/SendBatchCtx which degrade to the plain calls.
type TracedTransport interface {
	Transport
	// SetTrace installs the trace ring.  Call before concurrent use.
	SetTrace(r *trace.Ring)
	// SendTraced is Send carrying a causal trace context.
	SendTraced(from, to clock.SiteID, payload []byte, tc TraceContext) error
	// SendBatchTraced is SendBatch carrying a causal trace context and
	// per-message MSet identities (ids[i] identifies payloads[i]; nil
	// means untraced identities).
	SendBatchTraced(from, to clock.SiteID, payloads [][]byte, ids []uint64, tc TraceContext) error
}

// SendCtx sends with a causal trace context when the transport
// supports one, degrading to a plain Send otherwise.
func SendCtx(t Transport, from, to clock.SiteID, payload []byte, tc TraceContext) error {
	if tt, ok := t.(TracedTransport); ok {
		return tt.SendTraced(from, to, payload, tc)
	}
	return t.Send(from, to, payload)
}

// SendBatchCtx sends a batch with a causal trace context when the
// transport supports one, degrading to a plain SendBatch otherwise.
func SendBatchCtx(t Transport, from, to clock.SiteID, payloads [][]byte, ids []uint64, tc TraceContext) error {
	if tt, ok := t.(TracedTransport); ok {
		return tt.SendBatchTraced(from, to, payloads, ids, tc)
	}
	return t.SendBatch(from, to, payloads)
}

// SetTrace installs the trace ring on a transport that supports
// causal tracing; a no-op otherwise.
func SetTrace(t Transport, r *trace.Ring) {
	if tt, ok := t.(TracedTransport); ok {
		tt.SetTrace(r)
	}
}

// Config parameterizes the simulated transport (Sim).
type Config struct {
	// Seed seeds the deterministic random source used for latency and
	// loss decisions.
	Seed int64
	// MinLatency and MaxLatency bound the uniform one-way delay applied
	// to each message.  Both zero means instantaneous delivery.
	MinLatency, MaxLatency time.Duration
	// LossRate is the probability in [0,1] that a message is dropped en
	// route (after its latency has elapsed, like a real timeout).
	LossRate float64
}

// Validate rejects configurations that would silently misbehave at send
// time: inverted latency bounds, negative delays, and probabilities
// outside [0,1].
func (c Config) Validate() error {
	if c.MinLatency < 0 || c.MaxLatency < 0 {
		return fmt.Errorf("network: negative latency bound (min %v, max %v)", c.MinLatency, c.MaxLatency)
	}
	if c.MaxLatency < c.MinLatency {
		return fmt.Errorf("network: MinLatency %v exceeds MaxLatency %v", c.MinLatency, c.MaxLatency)
	}
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("network: LossRate %v outside [0,1]", c.LossRate)
	}
	return nil
}

// Stats counts transport activity.  All fields are cumulative.  On a
// distributed transport each instance counts its own view: Sent on the
// sender, Delivered/Bytes/Frames on the receiver (an in-process local
// delivery counts both sides at once).
type Stats struct {
	Sent        uint64 // messages handed to Send/Call/SendBatch
	Delivered   uint64 // messages that reached a handler
	Lost        uint64 // messages dropped by the loss model
	Partitioned uint64 // messages rejected because of a partition
	Bytes       uint64 // payload bytes delivered
	Frames      uint64 // batch frames delivered (one per SendBatch success)
	Dials       uint64 // connection (re)establishments (TCP only)
}

// Metrics instruments a transport alongside Stats.  All fields optional
// (nil fields are no-ops).  On the simulator the latency histogram
// observes the sampled (injected) link delay, never the wall clock, so
// simulation determinism (the A4 rule) is preserved; on the TCP
// transport it observes the measured round-trip time.
type Metrics struct {
	// Sent counts messages handed to Send/Call/SendBatch.
	Sent *metrics.Counter
	// Delivered counts messages that reached a handler successfully.
	Delivered *metrics.Counter
	// Lost counts messages dropped by the loss model.
	Lost *metrics.Counter
	// Partitioned counts messages rejected because of a partition.
	Partitioned *metrics.Counter
	// Bytes counts payload bytes delivered.
	Bytes *metrics.Counter
	// Frames counts batch frames delivered (one per SendBatch success).
	Frames *metrics.Counter
	// LatencySeconds observes the per-transit delay in nanoseconds, one
	// observation per transit (frame or message), whatever its outcome.
	LatencySeconds *metrics.Histogram
}
