package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// mkEvent builds a timeline event at a fixed offset from a base time.
func mkEvent(kind Kind, site int, mset, stamp uint64, atMS int, dur time.Duration) Event {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return Event{
		At:   base.Add(time.Duration(atMS) * time.Millisecond),
		Kind: kind, Site: site, ET: "et1.1", MSet: mset, Stamp: stamp, Dur: dur,
	}
}

func sampleEvents() []Event {
	return []Event{
		mkEvent(Commit, 1, 0xa1, 1, 0, 0),
		mkEvent(Sequence, 1, 0xa1, 2, 0, 2*time.Millisecond),
		mkEvent(Enqueue, 1, 0xa1, 3, 2, 0),
		mkEvent(Receive, 1, 0xa1, 4, 2, 0),
		mkEvent(WALFsync, 1, 0xa1, 5, 3, time.Millisecond),
		mkEvent(Apply, 1, 0xa1, 6, 5, 0),
		mkEvent(Receive, 2, 0xa1, 7, 10, 0),
		mkEvent(Hold, 2, 0xa1, 8, 11, 0),
		mkEvent(Apply, 2, 0xa1, 9, 40, 0),
		// A second MSet interleaved.
		mkEvent(Commit, 2, 0xb2, 5, 6, 0),
		mkEvent(Receive, 1, 0xb2, 8, 9, 0),
		mkEvent(Apply, 1, 0xb2, 9, 12, 0),
		// Infrastructure: no MSet.
		mkEvent(Flush, 1, 0, 4, 2, time.Millisecond),
		mkEvent(Election, 1101, 0, 1, 0, 0),
	}
}

func TestAssembleGroupsAndOrders(t *testing.T) {
	ts := Assemble(sampleEvents())
	if len(ts) != 2 {
		t.Fatalf("timelines = %d, want 2", len(ts))
	}
	a := ts[0]
	if a.MSet != 0xa1 || a.Origin != 1 || a.ET != "et1.1" {
		t.Fatalf("timeline a = %+v", a)
	}
	// Causal (stamp) order even if input is shuffled.
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Stamp < a.Events[i-1].Stamp {
			t.Fatalf("events out of causal order at %d", i)
		}
	}
	if a.Events[0].Kind != Commit {
		t.Errorf("first event = %s, want commit", a.Events[0].Kind)
	}
}

func TestAssembleStampBeatsWallClock(t *testing.T) {
	// The receive's wall clock is BEFORE the commit's (cross-process
	// skew), but its stamp is later; causal order must win.
	evs := []Event{
		mkEvent(Receive, 2, 0xc3, 9, -5, 0),
		mkEvent(Commit, 1, 0xc3, 1, 0, 0),
	}
	ts := Assemble(evs)
	if len(ts) != 1 || ts[0].Events[0].Kind != Commit {
		t.Fatalf("stamp order lost: %+v", ts[0].Events)
	}
}

func TestLegsAndWindow(t *testing.T) {
	ts := Assemble(sampleEvents())
	a := ts[0]
	legs := a.Legs()
	byName := map[string][]Leg{}
	for _, l := range legs {
		byName[l.Name] = append(byName[l.Name], l)
	}
	if n := len(byName["commit→receive"]); n != 2 {
		t.Errorf("commit→receive legs = %d, want 2 (both sites)", n)
	}
	if n := len(byName["receive→apply"]); n != 2 {
		t.Errorf("receive→apply legs = %d, want 2", n)
	}
	if n := len(byName["sequence"]); n != 1 || byName["sequence"][0].Dur != 2*time.Millisecond {
		t.Errorf("sequence leg = %+v", byName["sequence"])
	}
	if n := len(byName["wal-fsync"]); n != 1 {
		t.Errorf("wal-fsync legs = %d, want 1", n)
	}
	if w := a.Window(); w != 40*time.Millisecond {
		t.Errorf("window = %v, want 40ms", w)
	}
}

func TestCompleteAndCriticalPath(t *testing.T) {
	ts := Assemble(sampleEvents())
	a, b := ts[0], ts[1]
	if !a.Complete([]int{1, 2}) {
		t.Errorf("timeline a should be complete for sites 1,2")
	}
	if b.Complete([]int{1, 2}) {
		t.Errorf("timeline b lacks site 2 events, must be incomplete")
	}
	path := a.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	if path[0].Kind != Commit {
		t.Errorf("path starts with %s, want commit", path[0].Kind)
	}
	last := path[len(path)-1]
	if last.Kind != Apply || last.Site != 2 {
		t.Errorf("path ends with %s@site%d, want apply@site2 (slowest)", last.Kind, last.Site)
	}
	// Site 1's (fast) receive/apply must not be on the path.
	for _, e := range path {
		if e.Site == 1 && (e.Kind == Receive || e.Kind == Apply) {
			t.Errorf("fast site's %s on critical path", e.Kind)
		}
	}
}

func TestUnattributed(t *testing.T) {
	evs := sampleEvents()
	if got := Unattributed(evs); len(got) != 0 {
		t.Fatalf("sample events unattributed = %+v", got)
	}
	evs = append(evs, mkEvent(Apply, 3, 0, 1, 0, 0)) // apply without an MSet: a bug
	got := Unattributed(evs)
	if len(got) != 1 || got[0].Kind != Apply {
		t.Fatalf("Unattributed = %+v, want the bogus apply", got)
	}
}

func TestLegStats(t *testing.T) {
	ts := Assemble(sampleEvents())
	stats := LegStats(ts)
	if len(stats) == 0 {
		t.Fatal("no leg stats")
	}
	var found bool
	for _, s := range stats {
		if s.Name == "receive→apply" {
			found = true
			if s.Count != 3 { // 2 on timeline a, 1 on b
				t.Errorf("receive→apply count = %d, want 3", s.Count)
			}
			if s.P50 > s.P99 || s.P99 > s.Max {
				t.Errorf("quantiles disordered: %+v", s)
			}
		}
	}
	if !found {
		t.Error("receive→apply missing from stats")
	}
}

func TestInfraLegStats(t *testing.T) {
	evs := sampleEvents()
	// Two read-wait parks and one read-snap span, MSet-less like the
	// read path records them.
	evs = append(evs,
		mkEvent(ReadWait, 2, 0, 10, 20, 3*time.Millisecond),
		mkEvent(ReadWait, 3, 0, 11, 22, time.Millisecond),
		mkEvent(ReadSnap, 2, 0, 12, 23, 50*time.Microsecond),
	)
	stats := InfraLegStats(Infrastructure(evs))
	byName := map[string]LegStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	rw, ok := byName["read-wait"]
	if !ok {
		t.Fatal("read-wait missing from infra leg stats")
	}
	if rw.Count != 2 || rw.Max != 3*time.Millisecond {
		t.Errorf("read-wait stat = %+v, want count 2 max 3ms", rw)
	}
	if rs := byName["read-snap"]; rs.Count != 1 {
		t.Errorf("read-snap stat = %+v, want count 1", rs)
	}
	// The MSet-less election is a point event and must not appear.
	if _, ok := byName["election"]; ok {
		t.Error("point event leaked into infra leg stats")
	}
	// Timeline-owned spans (sequence has an MSet) stay out.
	if _, ok := byName["sequence"]; ok {
		t.Error("timeline span leaked into infra leg stats")
	}
}

func TestExportChromeValidJSON(t *testing.T) {
	evs := sampleEvents()
	ts := Assemble(evs)
	var buf bytes.Buffer
	if err := ExportChrome(&buf, ts, Infrastructure(evs)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if ph != "X" && ph != "i" {
			t.Errorf("unexpected phase %q", ph)
		}
		if ts, ok := e["ts"].(float64); !ok || ts < 0 {
			t.Errorf("bad ts in %+v", e)
		}
		if ph == "X" {
			if d, ok := e["dur"].(float64); !ok || d <= 0 {
				t.Errorf("X event without positive dur: %+v", e)
			}
		}
	}
	if phases["X"] == 0 || phases["i"] == 0 {
		t.Errorf("want both span and instant events, got %v", phases)
	}
}
