// Package trace provides lightweight, lock-cheap event tracing for the
// replicated system: a fixed-size ring buffer of structured events that
// engines and the chassis emit at the interesting points of an MSet's
// life (commit, send, receive, hold, apply, compensate) and of queries
// (priced read, conservative fallback).
//
// Tracing answers the questions that metrics aggregate away — "why did
// this MSet wait 40 ms at site 3?", "which query paid the ε budget?" —
// without external dependencies.  A nil *Ring is valid and records
// nothing, so call sites never need nil checks.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the chassis and engines.
const (
	// Commit: an update ET committed at its origin.
	Commit Kind = "commit"
	// Enqueue: an MSet entered an outbound stable queue.
	Enqueue Kind = "enqueue"
	// Receive: an MSet entered a site's inbound queue.
	Receive Kind = "receive"
	// Hold: a site's apply deferred the MSet (ordering hold-back).
	Hold Kind = "hold"
	// Apply: a site applied the MSet (recorded as a span by the
	// replica layer; Dur is the apply-function runtime).
	Apply Kind = "apply"
	// Compensate: a site undid an aborted MSet.
	Compensate Kind = "compensate"
	// QueryCharged: a read imported inconsistency units.
	QueryCharged Kind = "query-charged"
	// QueryFallback: a read took the conservative (serialized) path.
	QueryFallback Kind = "query-fallback"
	// Sequence: the origin reserved global sequence numbers for an MSet
	// (span; Dur covers the whole reservation round trip).
	Sequence Kind = "sequence"
	// SeqCommit: the sequencer-replica leader majority-committed a
	// reservation (span at the seqrep layer).
	SeqCommit Kind = "seq-commit"
	// SeqAppend: one follower acknowledged a watermark append (span;
	// Dur is the append RTT).
	SeqAppend Kind = "seq-append"
	// Election: a sequencer replica started a term / won leadership.
	Election Kind = "election"
	// WALFsync: an MSet became durable in a site's write-ahead log
	// (span; Dur covers its group-commit flush wait).
	WALFsync Kind = "wal-fsync"
	// Flush: an outbound delivery flushed a batch to a peer (span).
	Flush Kind = "flush"
	// CatchUp: a restarted site installed a state-transfer snapshot
	// (span; Dur covers fetch + enqueue).
	CatchUp Kind = "catch-up"
	// NetSend: the transport sent a payload to a remote process (span;
	// Dur is the transport-level round trip, 0 for fire-and-forget).
	NetSend Kind = "net-send"
	// NetRecv: the transport delivered a remote payload locally.
	NetRecv Kind = "net-recv"
	// ReadWait: a strong/bounded/session read parked on the SAFETIME
	// delayed-read gate (span; Dur is the park time).
	ReadWait Kind = "read-wait"
	// ReadSnap: the snapshot phase of a consistency-level read (span;
	// Dur covers timestamp selection plus the version-chain reads).
	ReadSnap Kind = "read-snap"
)

// Event is one trace record.
type Event struct {
	// Seq is the event's position in the trace.  It counts every event
	// ever recorded, not ring slots: Seq keeps increasing monotonically
	// after the ring wraps and overwrites old events, so a consumer can
	// resume an incremental read with Dump(w, lastSeen+1) and detect
	// gaps (events evicted before it caught up) by Seq discontinuities.
	Seq uint64 `json:"seq"`
	// At is the wall-clock capture time (span start for span events).
	At time.Time `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Site is where it happened (0 for origin-less events).
	Site int `json:"site"`
	// ET names the epsilon-transaction involved, if any.
	ET string `json:"et,omitempty"`
	// MSet is the message identity of the MSet involved (0 for events
	// without one, e.g. query events).  It is the same ID the
	// propagation pipeline dedups on, so one MSet's commit, enqueue,
	// receive, hold and apply events correlate across sites — and the
	// metrics.Lag tracker can derive commit→apply lag from the same
	// identity.
	MSet uint64 `json:"mset,omitempty"`
	// Stamp is the ring's causal (Lamport) stamp at record time.  The
	// transports carry the sender's stamp in every frame and merge it
	// into the receiver's ring, so events of one MSet order causally
	// across processes even when their wall clocks disagree.
	Stamp uint64 `json:"stamp,omitempty"`
	// Dur is the span duration for span events (RecordSpan); zero for
	// instantaneous events.
	Dur time.Duration `json:"dur,omitempty"`
	// Detail carries event-specific context ("seq=12", "cost=2", ...).
	Detail string `json:"detail,omitempty"`
}

// String renders the event as one log line.  The leading "#<seq> "
// token is a stable contract: incremental text readers (esrtop) parse
// it to resume.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s site%d %s %s",
		e.Seq, e.At.Format("15:04:05.000000"), e.Site, e.Kind, e.ET)
	if e.MSet != 0 {
		fmt.Fprintf(&b, " mset=%#x", e.MSet)
	}
	if e.Stamp != 0 {
		fmt.Fprintf(&b, " stamp=%d", e.Stamp)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%s", e.Dur)
	}
	if e.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Ring is a fixed-capacity circular trace buffer.  It is safe for
// concurrent use; a nil *Ring discards all events.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever recorded
	stamp uint64 // causal (Lamport) clock, ticked per event
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends an event.  Safe on a nil ring (no-op).
func (r *Ring) Record(kind Kind, site int, et string, detail string) {
	r.RecordMSet(kind, site, et, 0, detail)
}

// RecordMSet appends an event carrying the MSet message identity, so
// the propagation stages of one MSet correlate across sites.  Safe on
// nil.
func (r *Ring) RecordMSet(kind Kind, site int, et string, mset uint64, detail string) {
	if r == nil {
		return
	}
	r.record(Event{At: time.Now(), Kind: kind, Site: site, ET: et, MSet: mset, Detail: detail})
}

// RecordSpan appends a span event: an operation that started at start
// and ended now.  At carries the start time and Dur the elapsed
// duration, so the collector can reconstruct per-leg timings.  Safe on
// nil.
func (r *Ring) RecordSpan(kind Kind, site int, et string, mset uint64, start time.Time, detail string) {
	if r == nil {
		return
	}
	r.record(Event{At: start, Kind: kind, Site: site, ET: et, MSet: mset, Dur: time.Since(start), Detail: detail})
}

// record stamps and stores one event under the ring lock.
func (r *Ring) record(e Event) {
	r.mu.Lock()
	r.stamp++
	e.Seq = r.next
	e.Stamp = r.stamp
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Stamp returns the ring's current causal stamp.  Senders place it in
// outgoing frames; zero on a nil ring.
func (r *Ring) Stamp() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stamp
}

// ObserveStamp merges a remote causal stamp into the ring's clock
// (Lamport max-merge), so events recorded after a receive causally
// follow the sender's events.  Safe on nil.
func (r *Ring) ObserveStamp(remote uint64) {
	if r == nil || remote == 0 {
		return
	}
	r.mu.Lock()
	if remote > r.stamp {
		r.stamp = remote
	}
	r.mu.Unlock()
}

// Recordf is Record with a formatted detail string.  Safe on nil, and
// the formatting cost is skipped entirely on a nil ring.
func (r *Ring) Recordf(kind Kind, site int, et string, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(kind, site, et, fmt.Sprintf(format, args...))
}

// RecordMSetf is RecordMSet with a formatted detail string.  Safe on
// nil, skipping the formatting cost like Recordf.
func (r *Ring) RecordMSetf(kind Kind, site int, et string, mset uint64, format string, args ...any) {
	if r == nil {
		return
	}
	r.RecordMSet(kind, site, et, mset, fmt.Sprintf(format, args...))
}

// Len reports the number of events currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total reports the number of events ever recorded, including those the
// ring has since overwritten.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	return r.SnapshotSince(0)
}

// SnapshotSince returns the retained events with Seq >= since, oldest
// first.  Because Seq is monotone across ring wrap, an incremental
// consumer passes its last seen Seq + 1 to read only what is new; if
// the ring wrapped past the consumer, the first returned event's Seq
// exceeds since and the gap is detectable.  Safe on nil.
func (r *Ring) SnapshotSince(since uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	if since > start {
		start = since
	}
	if start >= r.next {
		return nil
	}
	out := make([]Event, 0, r.next-start)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Filter returns the retained events matching every given predicate.
func (r *Ring) Filter(preds ...func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		ok := true
		for _, p := range preds {
			if !p(e) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// ByKind is a Filter predicate matching one kind.
func ByKind(k Kind) func(Event) bool {
	return func(e Event) bool { return e.Kind == k }
}

// BySite is a Filter predicate matching one site.
func BySite(site int) func(Event) bool {
	return func(e Event) bool { return e.Site == site }
}

// ByET is a Filter predicate matching one epsilon-transaction.
func ByET(et string) func(Event) bool {
	return func(e Event) bool { return e.ET == et }
}

// Dump writes the retained events with Seq >= since to w, one per
// line.  Pass 0 for a full dump.  Incremental readers (esrtop's event
// pane) call it repeatedly with their last seen Seq + 1; monotone Seq
// across ring wrap guarantees no event is ever re-printed.
func (r *Ring) Dump(w io.Writer, since uint64) {
	for _, e := range r.SnapshotSince(since) {
		fmt.Fprintln(w, e)
	}
}
