// Package trace provides lightweight, lock-cheap event tracing for the
// replicated system: a fixed-size ring buffer of structured events that
// engines and the chassis emit at the interesting points of an MSet's
// life (commit, send, receive, hold, apply, compensate) and of queries
// (priced read, conservative fallback).
//
// Tracing answers the questions that metrics aggregate away — "why did
// this MSet wait 40 ms at site 3?", "which query paid the ε budget?" —
// without external dependencies.  A nil *Ring is valid and records
// nothing, so call sites never need nil checks.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the chassis and engines.
const (
	// Commit: an update ET committed at its origin.
	Commit Kind = "commit"
	// Enqueue: an MSet entered an outbound stable queue.
	Enqueue Kind = "enqueue"
	// Receive: an MSet entered a site's inbound queue.
	Receive Kind = "receive"
	// Hold: a site's apply deferred the MSet (ordering hold-back).
	Hold Kind = "hold"
	// Apply: a site applied the MSet.
	Apply Kind = "apply"
	// Compensate: a site undid an aborted MSet.
	Compensate Kind = "compensate"
	// QueryCharged: a read imported inconsistency units.
	QueryCharged Kind = "query-charged"
	// QueryFallback: a read took the conservative (serialized) path.
	QueryFallback Kind = "query-fallback"
)

// Event is one trace record.
type Event struct {
	// Seq is the event's position in the trace (monotone).
	Seq uint64
	// At is the wall-clock capture time.
	At time.Time
	// Kind classifies the event.
	Kind Kind
	// Site is where it happened (0 for origin-less events).
	Site int
	// ET names the epsilon-transaction involved, if any.
	ET string
	// Detail carries event-specific context ("seq=12", "cost=2", ...).
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s site%d %s %s %s",
		e.Seq, e.At.Format("15:04:05.000000"), e.Site, e.Kind, e.ET, e.Detail)
}

// Ring is a fixed-capacity circular trace buffer.  It is safe for
// concurrent use; a nil *Ring discards all events.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends an event.  Safe on a nil ring (no-op).
func (r *Ring) Record(kind Kind, site int, et string, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := Event{Seq: r.next, At: time.Now(), Kind: kind, Site: site, ET: et, Detail: detail}
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Recordf is Record with a formatted detail string.  Safe on nil.
func (r *Ring) Recordf(kind Kind, site int, et string, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(kind, site, et, fmt.Sprintf(format, args...))
}

// Len reports the number of events currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total reports the number of events ever recorded, including those the
// ring has since overwritten.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if r.next > n {
		start = r.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Filter returns the retained events matching every given predicate.
func (r *Ring) Filter(preds ...func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		ok := true
		for _, p := range preds {
			if !p(e) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// ByKind is a Filter predicate matching one kind.
func ByKind(k Kind) func(Event) bool {
	return func(e Event) bool { return e.Kind == k }
}

// BySite is a Filter predicate matching one site.
func BySite(site int) func(Event) bool {
	return func(e Event) bool { return e.Site == site }
}

// ByET is a Filter predicate matching one epsilon-transaction.
func ByET(et string) func(Event) bool {
	return func(e Event) bool { return e.ET == et }
}

// Dump writes the retained events to w, one per line.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Snapshot() {
		fmt.Fprintln(w, e)
	}
}
