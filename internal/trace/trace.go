// Package trace provides lightweight, lock-cheap event tracing for the
// replicated system: a fixed-size ring buffer of structured events that
// engines and the chassis emit at the interesting points of an MSet's
// life (commit, send, receive, hold, apply, compensate) and of queries
// (priced read, conservative fallback).
//
// Tracing answers the questions that metrics aggregate away — "why did
// this MSet wait 40 ms at site 3?", "which query paid the ε budget?" —
// without external dependencies.  A nil *Ring is valid and records
// nothing, so call sites never need nil checks.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the chassis and engines.
const (
	// Commit: an update ET committed at its origin.
	Commit Kind = "commit"
	// Enqueue: an MSet entered an outbound stable queue.
	Enqueue Kind = "enqueue"
	// Receive: an MSet entered a site's inbound queue.
	Receive Kind = "receive"
	// Hold: a site's apply deferred the MSet (ordering hold-back).
	Hold Kind = "hold"
	// Apply: a site applied the MSet.
	Apply Kind = "apply"
	// Compensate: a site undid an aborted MSet.
	Compensate Kind = "compensate"
	// QueryCharged: a read imported inconsistency units.
	QueryCharged Kind = "query-charged"
	// QueryFallback: a read took the conservative (serialized) path.
	QueryFallback Kind = "query-fallback"
)

// Event is one trace record.
type Event struct {
	// Seq is the event's position in the trace.  It counts every event
	// ever recorded, not ring slots: Seq keeps increasing monotonically
	// after the ring wraps and overwrites old events, so a consumer can
	// resume an incremental read with Dump(w, lastSeen+1) and detect
	// gaps (events evicted before it caught up) by Seq discontinuities.
	Seq uint64
	// At is the wall-clock capture time.
	At time.Time
	// Kind classifies the event.
	Kind Kind
	// Site is where it happened (0 for origin-less events).
	Site int
	// ET names the epsilon-transaction involved, if any.
	ET string
	// MSet is the message identity of the MSet involved (0 for events
	// without one, e.g. query events).  It is the same ID the
	// propagation pipeline dedups on, so one MSet's commit, enqueue,
	// receive, hold and apply events correlate across sites — and the
	// metrics.Lag tracker can derive commit→apply lag from the same
	// identity.
	MSet uint64
	// Detail carries event-specific context ("seq=12", "cost=2", ...).
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	if e.MSet != 0 {
		return fmt.Sprintf("#%d %s site%d %s %s mset=%#x %s",
			e.Seq, e.At.Format("15:04:05.000000"), e.Site, e.Kind, e.ET, e.MSet, e.Detail)
	}
	return fmt.Sprintf("#%d %s site%d %s %s %s",
		e.Seq, e.At.Format("15:04:05.000000"), e.Site, e.Kind, e.ET, e.Detail)
}

// Ring is a fixed-capacity circular trace buffer.  It is safe for
// concurrent use; a nil *Ring discards all events.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends an event.  Safe on a nil ring (no-op).
func (r *Ring) Record(kind Kind, site int, et string, detail string) {
	r.RecordMSet(kind, site, et, 0, detail)
}

// RecordMSet appends an event carrying the MSet message identity, so
// the propagation stages of one MSet correlate across sites.  Safe on
// nil.
func (r *Ring) RecordMSet(kind Kind, site int, et string, mset uint64, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := Event{Seq: r.next, At: time.Now(), Kind: kind, Site: site, ET: et, MSet: mset, Detail: detail}
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Recordf is Record with a formatted detail string.  Safe on nil, and
// the formatting cost is skipped entirely on a nil ring.
func (r *Ring) Recordf(kind Kind, site int, et string, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(kind, site, et, fmt.Sprintf(format, args...))
}

// RecordMSetf is RecordMSet with a formatted detail string.  Safe on
// nil, skipping the formatting cost like Recordf.
func (r *Ring) RecordMSetf(kind Kind, site int, et string, mset uint64, format string, args ...any) {
	if r == nil {
		return
	}
	r.RecordMSet(kind, site, et, mset, fmt.Sprintf(format, args...))
}

// Len reports the number of events currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total reports the number of events ever recorded, including those the
// ring has since overwritten.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	return r.SnapshotSince(0)
}

// SnapshotSince returns the retained events with Seq >= since, oldest
// first.  Because Seq is monotone across ring wrap, an incremental
// consumer passes its last seen Seq + 1 to read only what is new; if
// the ring wrapped past the consumer, the first returned event's Seq
// exceeds since and the gap is detectable.  Safe on nil.
func (r *Ring) SnapshotSince(since uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	if since > start {
		start = since
	}
	if start >= r.next {
		return nil
	}
	out := make([]Event, 0, r.next-start)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Filter returns the retained events matching every given predicate.
func (r *Ring) Filter(preds ...func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		ok := true
		for _, p := range preds {
			if !p(e) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// ByKind is a Filter predicate matching one kind.
func ByKind(k Kind) func(Event) bool {
	return func(e Event) bool { return e.Kind == k }
}

// BySite is a Filter predicate matching one site.
func BySite(site int) func(Event) bool {
	return func(e Event) bool { return e.Site == site }
}

// ByET is a Filter predicate matching one epsilon-transaction.
func ByET(et string) func(Event) bool {
	return func(e Event) bool { return e.ET == et }
}

// Dump writes the retained events with Seq >= since to w, one per
// line.  Pass 0 for a full dump.  Incremental readers (esrtop's event
// pane) call it repeatedly with their last seen Seq + 1; monotone Seq
// across ring wrap guarantees no event is ever re-printed.
func (r *Ring) Dump(w io.Writer, since uint64) {
	for _, e := range r.SnapshotSince(since) {
		fmt.Fprintln(w, e)
	}
}
