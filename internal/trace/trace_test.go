package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Record(Apply, 1, "et1.1", "x")
	r.Recordf(Hold, 2, "et1.2", "seq=%d", 4)
	if r.Len() != 0 || r.Total() != 0 {
		t.Errorf("nil ring reported events")
	}
	if r.Snapshot() != nil {
		t.Errorf("nil ring snapshot not nil")
	}
	if got := r.Filter(ByKind(Apply)); got != nil {
		t.Errorf("nil ring filter = %v", got)
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Recordf(Apply, i, "et", "n=%d", i)
	}
	if r.Len() != 5 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if e.Seq != uint64(i) || e.Site != i {
			t.Errorf("snapshot[%d] = %+v", i, e)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Recordf(Receive, i, "et", "n=%d", i)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	if snap[0].Seq != 6 || snap[3].Seq != 9 {
		t.Errorf("retained window = [%d..%d], want [6..9]", snap[0].Seq, snap[3].Seq)
	}
}

func TestFilters(t *testing.T) {
	r := NewRing(16)
	r.Record(Apply, 1, "a", "")
	r.Record(Hold, 1, "b", "")
	r.Record(Apply, 2, "a", "")
	if got := len(r.Filter(ByKind(Apply))); got != 2 {
		t.Errorf("ByKind(Apply) = %d", got)
	}
	if got := len(r.Filter(BySite(1))); got != 2 {
		t.Errorf("BySite(1) = %d", got)
	}
	if got := len(r.Filter(ByET("a"), BySite(2))); got != 1 {
		t.Errorf("combined filter = %d", got)
	}
}

func TestDumpAndString(t *testing.T) {
	r := NewRing(4)
	r.Record(QueryCharged, 3, "et1.9", "cost=2")
	var sb strings.Builder
	r.Dump(&sb, 0)
	out := sb.String()
	for _, want := range []string{"site3", "query-charged", "et1.9", "cost=2", "#0"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q: %s", want, out)
		}
	}
}

// TestSeqMonotoneAcrossWrap pins the overflow contract: Seq counts
// events ever recorded, so it keeps increasing after the ring wraps and
// never repeats — the property incremental readers rely on.
func TestSeqMonotoneAcrossWrap(t *testing.T) {
	r := NewRing(4)
	var last uint64
	for round := 0; round < 5; round++ { // 20 events through a 4-slot ring
		for i := 0; i < 4; i++ {
			r.Record(Apply, 1, "et", "")
		}
		snap := r.Snapshot()
		for _, e := range snap {
			if round > 0 || e.Seq > 0 {
				if e.Seq <= last && !(round == 0 && e.Seq == 0) {
					t.Fatalf("Seq %d not monotone after %d (round %d)", e.Seq, last, round)
				}
			}
			last = e.Seq
		}
	}
	if last != 19 {
		t.Fatalf("final Seq = %d, want 19 (events ever recorded - 1)", last)
	}
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
}

// TestDumpSince checks the incremental reader: only events at or past
// since are printed, a fully caught-up reader gets nothing, and a
// reader that fell behind a wrap picks up from the oldest retained
// event (gap detectable via the first Seq).
func TestDumpSince(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ { // retained window is Seq 2..5
		r.Recordf(Apply, i, "et", "n=%d", i)
	}
	var sb strings.Builder
	r.Dump(&sb, 4)
	if out := sb.String(); strings.Contains(out, "#3") || !strings.Contains(out, "#4") || !strings.Contains(out, "#5") {
		t.Errorf("Dump since=4 = %q", out)
	}
	if got := r.SnapshotSince(6); got != nil {
		t.Errorf("caught-up reader got %v", got)
	}
	// A reader asking for Seq 0 only gets the retained window.
	if snap := r.SnapshotSince(0); len(snap) != 4 || snap[0].Seq != 2 {
		t.Errorf("wrapped reader window = %+v", snap)
	}
	var nilRing *Ring
	if nilRing.SnapshotSince(0) != nil {
		t.Error("nil ring SnapshotSince not nil")
	}
}

// TestRecordMSet checks the MSet identity is carried and rendered.
func TestRecordMSet(t *testing.T) {
	r := NewRing(4)
	r.RecordMSet(Commit, 1, "et1.1", 0x2a, "ops=1")
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].MSet != 0x2a {
		t.Fatalf("snapshot = %+v, want MSet 0x2a", snap)
	}
	if s := snap[0].String(); !strings.Contains(s, "mset=0x2a") {
		t.Errorf("String() = %q, want mset=0x2a", s)
	}
	var nilRing *Ring
	nilRing.RecordMSet(Commit, 1, "x", 1, "")
}

// TestStampsAndSpans pins the causal-clock contract: every record
// ticks the stamp, ObserveStamp max-merges a remote stamp, and
// RecordSpan captures start time + duration.
func TestStampsAndSpans(t *testing.T) {
	r := NewRing(8)
	if r.Stamp() != 0 {
		t.Fatalf("fresh ring stamp = %d", r.Stamp())
	}
	r.RecordMSet(Commit, 1, "et", 0x1, "")
	r.RecordMSet(Receive, 1, "et", 0x1, "")
	if r.Stamp() != 2 {
		t.Fatalf("stamp after 2 events = %d", r.Stamp())
	}
	r.ObserveStamp(10) // remote was ahead
	if r.Stamp() != 10 {
		t.Fatalf("stamp after merge = %d", r.Stamp())
	}
	r.ObserveStamp(4) // remote behind: no regress
	if r.Stamp() != 10 {
		t.Fatalf("stamp regressed to %d", r.Stamp())
	}
	start := time.Now().Add(-5 * time.Millisecond)
	r.RecordSpan(WALFsync, 2, "et", 0x1, start, "n=3")
	snap := r.Snapshot()
	last := snap[len(snap)-1]
	if last.Kind != WALFsync || last.Dur < 5*time.Millisecond || !last.At.Equal(start) {
		t.Fatalf("span event = %+v", last)
	}
	if last.Stamp != 11 {
		t.Fatalf("span stamp = %d, want 11 (merged clock + 1)", last.Stamp)
	}
	if s := last.String(); !strings.Contains(s, "dur=") || !strings.Contains(s, "stamp=11") {
		t.Errorf("String() = %q", s)
	}
	// Nil safety for the new surface.
	var nilRing *Ring
	nilRing.RecordSpan(WALFsync, 1, "x", 1, start, "")
	nilRing.ObserveStamp(5)
	if nilRing.Stamp() != 0 {
		t.Error("nil ring stamp nonzero")
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	r := NewRing(0)
	r.Record(Apply, 1, "x", "")
	if r.Len() != 1 {
		t.Errorf("default-capacity ring dropped the event")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Recordf(Apply, g, "et", "i=%d", i)
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 128 {
		t.Errorf("retained = %d, want 128", len(snap))
	}
	// Sequence numbers in a snapshot are strictly increasing.
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
}
