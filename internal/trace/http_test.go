package trace

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// parseNDJSON splits a ?format=json response into its header and
// events.
func parseNDJSON(t *testing.T, body string) (StreamHeader, []Event) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("empty NDJSON body")
	}
	var hdr StreamHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("bad header %q: %v", lines[0], err)
	}
	var evs []Event
	for _, l := range lines[1:] {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("bad event line %q: %v", l, err)
		}
		evs = append(evs, e)
	}
	return hdr, evs
}

func TestHandlerTextAndSince(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Recordf(Apply, i, "et", "n=%d", i)
	}
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	full := get(t, srv, "/trace")
	if !strings.Contains(full, "#0") || !strings.Contains(full, "#4") {
		t.Errorf("full dump = %q", full)
	}
	tail := get(t, srv, "/trace?since=3")
	if strings.Contains(tail, "#2") || !strings.Contains(tail, "#3") {
		t.Errorf("since=3 dump = %q", tail)
	}
}

func TestHandlerJSONResume(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 3; i++ {
		r.RecordMSet(Commit, 1, "et", uint64(0x10+i), "")
	}
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	hdr, evs := parseNDJSON(t, get(t, srv, "/trace?format=json"))
	if hdr.Gap || hdr.Count != 3 || len(evs) != 3 || hdr.Next != 3 {
		t.Fatalf("first read hdr=%+v evs=%d", hdr, len(evs))
	}
	if evs[0].MSet != 0x10 || evs[0].Stamp == 0 {
		t.Errorf("event lost fields over JSON: %+v", evs[0])
	}

	// Resume from hdr.Next: nothing new, no gap.
	hdr2, evs2 := parseNDJSON(t, get(t, srv, "/trace?format=json&since=3"))
	if hdr2.Gap || hdr2.Count != 0 || len(evs2) != 0 {
		t.Fatalf("caught-up read hdr=%+v", hdr2)
	}

	// More events, resume again: contiguous.
	r.RecordMSet(Apply, 2, "et", 0x10, "")
	hdr3, evs3 := parseNDJSON(t, get(t, srv, "/trace?format=json&since=3"))
	if hdr3.Gap || hdr3.Count != 1 || evs3[0].Seq != 3 {
		t.Fatalf("resumed read hdr=%+v", hdr3)
	}
}

// TestHandlerJSONGapOnEviction is the satellite contract: a resumed
// /trace?since=N read whose window was evicted by ring wrap must
// report the discontinuity.
func TestHandlerJSONGapOnEviction(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Record(Apply, i, "et", "")
	}
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	hdr, _ := parseNDJSON(t, get(t, srv, "/trace?format=json"))
	if hdr.Gap || hdr.Next != 3 {
		t.Fatalf("pre-wrap hdr = %+v", hdr)
	}
	// Push 10 more events through the 4-slot ring: Seq 3..12, retained
	// window 9..12.  The reader resuming at since=3 lost 3..8.
	for i := 0; i < 10; i++ {
		r.Record(Apply, i, "et", "")
	}
	hdr2, evs := parseNDJSON(t, get(t, srv, "/trace?format=json&since=3"))
	if !hdr2.Gap {
		t.Fatalf("eviction not reported: %+v", hdr2)
	}
	if hdr2.First != 9 || len(evs) != 4 || evs[0].Seq != 9 {
		t.Errorf("post-wrap window: hdr=%+v first evs=%+v", hdr2, evs)
	}
	// The same contract via text Dump: first printed Seq exceeds since.
	var sb strings.Builder
	r.Dump(&sb, 3)
	if !strings.Contains(sb.String(), "#9") || strings.Contains(sb.String(), "#8") {
		t.Errorf("text dump window = %q", sb.String())
	}
}

func TestHandlerNilRing(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	if body := get(t, srv, "/trace"); body != "" {
		t.Errorf("nil ring text = %q", body)
	}
	hdr, evs := parseNDJSON(t, get(t, srv, "/trace?format=json"))
	if hdr.Count != 0 || hdr.Gap || len(evs) != 0 {
		t.Errorf("nil ring json hdr = %+v", hdr)
	}
}

func TestHandlerBadSince(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRing(4)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentWrapAndSnapshot races writers wrapping the ring
// against incremental readers; run under -race this pins the locking,
// and the Seq-window invariants hold on every read.
func TestConcurrentWrapAndSnapshot(t *testing.T) {
	r := NewRing(32)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.RecordMSet(Apply, g, "et", uint64(i+1), "")
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		var since uint64
		for {
			evs := r.SnapshotSince(since)
			for i, e := range evs {
				if e.Seq < since {
					t.Errorf("snapshot returned Seq %d < since %d", e.Seq, since)
					return
				}
				if i > 0 && e.Seq != evs[i-1].Seq+1 {
					t.Errorf("snapshot not contiguous at %d", i)
					return
				}
			}
			if len(evs) > 0 {
				since = evs[len(evs)-1].Seq + 1
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			var sb strings.Builder
			r.Dump(&sb, r.Total()/2)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if r.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", r.Total())
	}
}
