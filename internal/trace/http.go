// HTTP exposure of the trace ring: the /trace endpoint every binary
// (esrnode, esrsim, the library server) mounts next to /metrics.  One
// shared handler keeps the wire contract — incremental ?since reads,
// gap reporting, the NDJSON format the collector consumes — in one
// place.
package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// StreamHeader is the first NDJSON record of a ?format=json response.
// It lets the collector resume incrementally and detect eviction gaps:
// the next read passes since=Next, and Gap reports whether events in
// [since, First) were already overwritten (the ring wrapped past the
// reader).
type StreamHeader struct {
	// Since echoes the request's since parameter.
	Since uint64 `json:"since"`
	// Next is the ring's total event count: pass it as the next
	// request's since for a gap-free tail.
	Next uint64 `json:"next"`
	// First is the Seq of the first returned event (meaningless when
	// Count is 0).
	First uint64 `json:"first"`
	// Count is the number of event records that follow.
	Count int `json:"count"`
	// Gap reports that events between Since and First were evicted
	// before this read — the reader fell behind the ring.
	Gap bool `json:"gap"`
}

// Handler serves the ring over HTTP.  Default (text) responses are
// Dump output — one Event.String line per event, resumable via
// ?since=N.  ?format=json responses are NDJSON: a StreamHeader line
// followed by one Event JSON object per line, which is what the
// esrtrace collector tails.  A nil ring serves empty responses.
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = v
		}
		if req.URL.Query().Get("format") != "json" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			r.Dump(w, since)
			return
		}
		evs := r.SnapshotSince(since)
		hdr := StreamHeader{Since: since, Next: r.Total(), Count: len(evs)}
		if len(evs) > 0 {
			hdr.First = evs[0].Seq
			hdr.Gap = hdr.First > since
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if err := enc.Encode(hdr); err != nil {
			return
		}
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
}
