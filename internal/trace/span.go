// Span assembly: folding the flat event ring (possibly merged from
// many processes) into per-MSet timelines with per-leg durations, a
// critical path, and a Chrome trace-event export.
//
// Events carrying the same MSet message identity belong to one
// timeline regardless of which process recorded them; within a
// timeline they order by causal stamp first (the transports propagate
// Lamport stamps in every frame, so a receive always stamps after its
// send even when wall clocks disagree), wall clock second.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Timeline is every recorded event of one MSet, causally ordered.
type Timeline struct {
	// MSet is the message identity shared by all events.
	MSet uint64
	// Shard is the ordering domain the MSet belongs to, decoded from
	// the identity's shard bits (et.MSet.MsgID lays them down; this
	// package sits below et so the extraction is inlined rather than
	// imported).  0 on unsharded clusters.
	Shard int
	// ET names the epsilon-transaction (from the first event carrying
	// one).
	ET string
	// Origin is the site of the commit event, or the first event's
	// site when no commit was captured.
	Origin int
	// Events holds the timeline in causal order.
	Events []Event
}

// Assemble groups events by MSet identity into causally ordered
// timelines.  Events with MSet == 0 (queries, elections, flush and
// frame-level infrastructure spans) are skipped — Infrastructure
// separates those.  Timelines come back sorted by first-event order.
func Assemble(events []Event) []*Timeline {
	byID := make(map[uint64]*Timeline)
	var order []uint64
	for _, e := range events {
		if e.MSet == 0 {
			continue
		}
		t := byID[e.MSet]
		if t == nil {
			t = &Timeline{MSet: e.MSet, Shard: int((e.MSet >> 59) & 15)}
			byID[e.MSet] = t
			order = append(order, e.MSet)
		}
		t.Events = append(t.Events, e)
	}
	out := make([]*Timeline, 0, len(order))
	for _, id := range order {
		t := byID[id]
		sort.SliceStable(t.Events, func(i, j int) bool {
			a, b := t.Events[i], t.Events[j]
			if a.Stamp != b.Stamp {
				return a.Stamp < b.Stamp
			}
			if !a.At.Equal(b.At) {
				return a.At.Before(b.At)
			}
			return a.Seq < b.Seq
		})
		t.Origin = t.Events[0].Site
		for _, e := range t.Events {
			if e.ET != "" && t.ET == "" {
				t.ET = e.ET
			}
			if e.Kind == Commit {
				t.Origin = e.Site
			}
		}
		out = append(out, t)
	}
	return out
}

// Infrastructure returns the events that belong to no MSet — the
// declared non-attributable kinds (sequencer internals, batch flushes,
// elections, frame-level transport spans, query pricing).  Anything
// else without an MSet is a tracing bug; Unattributed finds those.
func Infrastructure(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.MSet == 0 {
			out = append(out, e)
		}
	}
	return out
}

// infraKinds are the event kinds allowed to carry no MSet identity:
// they describe shared infrastructure work (a batch flush covers many
// MSets, an election none).
var infraKinds = map[Kind]bool{
	SeqCommit:     true,
	SeqAppend:     true,
	Election:      true,
	Flush:         true,
	NetSend:       true,
	NetRecv:       true,
	QueryCharged:  true,
	QueryFallback: true,
	ReadWait:      true,
	ReadSnap:      true,
}

// Unattributed returns events that are neither part of an MSet
// timeline nor a declared infrastructure kind.  A gap-free traced
// cluster produces none; the collector gates on this.
func Unattributed(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.MSet == 0 && !infraKinds[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Leg is one measured step of a timeline: either a recorded span event
// (sequence, wal-fsync, catch-up) or a derived gap between two
// adjacent lifecycle events (commit→receive propagation, receive→apply
// queueing).
type Leg struct {
	// Name identifies the step ("sequence", "commit→receive",
	// "receive→apply", "wal-fsync", ...), without site numbers so legs
	// aggregate across sites.
	Name string
	// Site is where the leg ended.
	Site int
	// Start is when the leg began.
	Start time.Time
	// Dur is the leg's duration.
	Dur time.Duration
}

// Legs derives the per-step durations of one timeline.  Span events
// contribute their own duration; lifecycle pairs contribute the
// wall-clock gap commit→receive (propagation, per remote site) and
// receive→apply (queueing + ordering hold, per site).  Wall-clock gaps
// across processes inherit clock skew — the causal stamps guarantee
// ordering, not duration precision — so cross-process legs are
// reported as measured.
func (t *Timeline) Legs() []Leg {
	var legs []Leg
	var commit *Event
	recv := map[int]Event{} // site → receive event
	for i := range t.Events {
		e := t.Events[i]
		switch e.Kind {
		case Commit:
			commit = &t.Events[i]
		case Receive:
			recv[e.Site] = e
			if commit != nil && !e.At.Before(commit.At) {
				legs = append(legs, Leg{Name: "commit→receive", Site: e.Site, Start: commit.At, Dur: e.At.Sub(commit.At)})
			}
		case Apply:
			if r, ok := recv[e.Site]; ok && !e.At.Before(r.At) {
				legs = append(legs, Leg{Name: "receive→apply", Site: e.Site, Start: r.At, Dur: e.At.Sub(r.At)})
			}
		}
		if e.Dur > 0 {
			legs = append(legs, Leg{Name: string(e.Kind), Site: e.Site, Start: e.At, Dur: e.Dur})
		}
	}
	return legs
}

// Complete reports whether the timeline covers the full lifecycle for
// the given replica sites: a commit at the origin plus a receive and
// an apply at every listed site.  sites may include the origin (which
// also receives and applies its own MSets).
func (t *Timeline) Complete(sites []int) bool {
	committed := false
	recv := map[int]bool{}
	applied := map[int]bool{}
	for _, e := range t.Events {
		switch e.Kind {
		case Commit:
			committed = true
		case Receive:
			recv[e.Site] = true
		case Apply:
			applied[e.Site] = true
		}
	}
	if !committed {
		return false
	}
	for _, s := range sites {
		if !recv[s] || !applied[s] {
			return false
		}
	}
	return true
}

// CriticalPath returns the chain of events from commit to the LAST
// apply — the path whose total wall time is the MSet's window of
// inconsistency.  It is the commit, any origin-side spans (sequence,
// wal-fsync), then the receive/hold/apply chain at the slowest site.
func (t *Timeline) CriticalPath() []Event {
	var commit *Event
	var lastApply *Event
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case Commit:
			if commit == nil {
				commit = e
			}
		case Apply:
			if lastApply == nil || e.At.After(lastApply.At) {
				lastApply = e
			}
		}
	}
	if lastApply == nil {
		return append([]Event(nil), t.Events...)
	}
	var path []Event
	for _, e := range t.Events {
		onOrigin := commit != nil && e.Site == commit.Site &&
			(e.Kind == Commit || e.Kind == Sequence || e.Kind == WALFsync || e.Kind == Enqueue)
		onSlowest := e.Site == lastApply.Site &&
			(e.Kind == Receive || e.Kind == Hold || e.Kind == Apply || e.Kind == WALFsync)
		if (onOrigin || onSlowest) && !e.At.After(lastApply.At) {
			path = append(path, e)
		}
	}
	return path
}

// Window is the timeline's window of inconsistency: commit to the end
// of the last apply (apply events recorded as spans end at At+Dur).
// Zero when either endpoint is missing.
func (t *Timeline) Window() time.Duration {
	var commit, last time.Time
	for _, e := range t.Events {
		switch e.Kind {
		case Commit:
			if commit.IsZero() {
				commit = e.At
			}
		case Apply:
			if end := e.At.Add(e.Dur); end.After(last) {
				last = end
			}
		}
	}
	if commit.IsZero() || last.IsZero() || last.Before(commit) {
		return 0
	}
	return last.Sub(commit)
}

// LegStat aggregates one leg name across timelines.
type LegStat struct {
	Name  string
	Count int
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// LegStats aggregates per-leg durations across timelines and reports
// p50/p99/max per leg name, sorted by name.
func LegStats(timelines []*Timeline) []LegStat {
	byName := map[string][]time.Duration{}
	for _, t := range timelines {
		for _, l := range t.Legs() {
			byName[l.Name] = append(byName[l.Name], l.Dur)
		}
	}
	return legStatRows(byName)
}

// InfraLegStats aggregates the span-shaped infrastructure events —
// read-wait and read-snap from the consistency-level read path, batch
// flushes, sequencer rounds, transport sends — which belong to no MSet
// timeline and so never show up in LegStats.  Point events (Dur == 0)
// are skipped; the result merges cleanly with LegStats output because
// infrastructure kinds and timeline leg names never collide.
func InfraLegStats(events []Event) []LegStat {
	byName := map[string][]time.Duration{}
	for _, e := range events {
		if e.MSet != 0 || e.Dur == 0 || !infraKinds[e.Kind] {
			continue
		}
		byName[string(e.Kind)] = append(byName[string(e.Kind)], e.Dur)
	}
	return legStatRows(byName)
}

// legStatRows folds name→durations into sorted LegStat rows.
func legStatRows(byName map[string][]time.Duration) []LegStat {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]LegStat, 0, len(names))
	for _, n := range names {
		ds := byName[n]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		out = append(out, LegStat{
			Name:  n,
			Count: len(ds),
			P50:   quantileDur(ds, 0.50),
			P99:   quantileDur(ds, 0.99),
			Max:   ds[len(ds)-1],
		})
	}
	return out
}

// quantileDur reads the q-quantile from an ascending slice (nearest
// rank).
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// chromeEvent is one Chrome trace-event record.  The "X" phase is a
// complete span (ts + dur), "i" an instant.  Perfetto and
// chrome://tracing load arrays of these under "traceEvents".
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ExportChrome writes the timelines (plus optional infrastructure
// events) as Chrome trace-event JSON: one process row per site, one
// thread row per MSet, span events as complete ("X") slices and
// lifecycle points as instants ("i").  The output loads directly in
// Perfetto or chrome://tracing.
func ExportChrome(w io.Writer, timelines []*Timeline, infra []Event) error {
	var evs []chromeEvent
	var epoch time.Time
	observe := func(at time.Time) {
		if !at.IsZero() && (epoch.IsZero() || at.Before(epoch)) {
			epoch = at
		}
	}
	for _, t := range timelines {
		for _, e := range t.Events {
			observe(e.At)
		}
	}
	for _, e := range infra {
		observe(e.At)
	}
	us := func(at time.Time) int64 { return at.Sub(epoch).Microseconds() }
	add := func(e Event, tid uint64) {
		args := map[string]any{"seq": e.Seq, "stamp": e.Stamp}
		if e.ET != "" {
			args["et"] = e.ET
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.MSet != 0 {
			args["mset"] = fmt.Sprintf("%#x", e.MSet)
		}
		ce := chromeEvent{Name: string(e.Kind), TS: us(e.At), PID: e.Site, TID: tid, Args: args}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = e.Dur.Microseconds()
			if ce.Dur == 0 {
				ce.Dur = 1
			}
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		evs = append(evs, ce)
	}
	for _, t := range timelines {
		for _, e := range t.Events {
			add(e, t.MSet)
			evs[len(evs)-1].Args["shard"] = t.Shard
		}
		// Derived legs render the gaps (propagation, queueing) that no
		// single event records as slices on the same thread row.
		for _, l := range t.Legs() {
			if l.Name != "commit→receive" && l.Name != "receive→apply" {
				continue // span events already emitted above
			}
			d := l.Dur.Microseconds()
			if d == 0 {
				d = 1
			}
			evs = append(evs, chromeEvent{
				Name: l.Name, Phase: "X", TS: us(l.Start), Dur: d,
				PID: l.Site, TID: t.MSet,
				Args: map[string]any{"mset": fmt.Sprintf("%#x", t.MSet)},
			})
		}
	}
	for _, e := range infra {
		add(e, 0)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs})
}
