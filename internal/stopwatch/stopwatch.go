// Package stopwatch is the single sanctioned wall-clock entry point
// for the determinism-critical packages (internal/sim, internal/network,
// internal/tabular), where esrvet rule A4 bans direct time.Now calls.
//
// The rule exists because simulation *logic* must be a pure function of
// its seeds: branching on wall-clock time makes runs unreproducible and
// the asynchronous-propagation results untrustworthy.  Measuring how
// long something took, however, is observation, not logic — latency and
// convergence-lag columns in the experiment tables are inherently
// wall-clock.  Funneling that one legitimate use through this package
// keeps the ban on direct reads absolute (any new time.Now in sim is a
// finding) while making every wall-clock dependency grep-able in one
// place.
package stopwatch

import "time"

// Stopwatch marks a start instant.  The zero value is not meaningful;
// obtain one from Start.
type Stopwatch struct {
	t0 time.Time
}

// Start returns a stopwatch running from now.
func Start() Stopwatch { return Stopwatch{t0: time.Now()} }

// Elapsed returns the wall time since Start.  It may be called any
// number of times; the stopwatch keeps running.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }

// Began returns the start instant, for trace spans that carry absolute
// timestamps alongside the measured duration.
func (s Stopwatch) Began() time.Time { return s.t0 }
