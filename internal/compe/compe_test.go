package compe

import (
	"errors"
	"sync"
	"testing"
	"time"

	"esr/internal/clock"
	"esr/internal/core"
	"esr/internal/network"
	"esr/internal/op"
)

func newEngine(t *testing.T, sites int, mode Mode, net network.Config) *Engine {
	t.Helper()
	e, err := New(Config{Core: core.Config{Sites: sites, Net: net}, Mode: mode, AutoCommit: false})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func quiesce(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Cluster().Quiesce(10 * time.Second); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
}

func TestTraitsMatchPaperTable1(t *testing.T) {
	e := newEngine(t, 1, Commutative, network.Config{Seed: 1})
	tr := e.Traits()
	if tr.Name != "COMPE" || tr.Restriction != `"operation value"` ||
		tr.Applicability != "Backwards" || tr.AsyncPropagation != "Query & Update" ||
		tr.SortingTime != "N/A" {
		t.Errorf("Traits = %+v does not match Table 1", tr)
	}
	if Commutative.String() != "commutative" || General.String() != "general" {
		t.Errorf("Mode strings wrong")
	}
}

func TestBeginCommitPropagates(t *testing.T) {
	e := newEngine(t, 3, Commutative, network.Config{Seed: 1})
	id, err := e.Begin(1, []op.Op{op.IncOp("x", 10)})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e.Commit(id); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	quiesce(t, e)
	for _, sid := range e.Cluster().SiteIDs() {
		if got := e.Cluster().Site(sid).Store.Get("x"); !got.Equal(op.NumValue(10)) {
			t.Errorf("site %v: x = %v, want 10", sid, got)
		}
	}
	st := e.Stats()
	if st.Commits != 1 || st.Aborts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAbortCompensatesEverywhere(t *testing.T) {
	e := newEngine(t, 3, Commutative, network.Config{Seed: 2, MinLatency: 10 * time.Microsecond, MaxLatency: 300 * time.Microsecond})
	keep, err := e.Begin(1, []op.Op{op.IncOp("x", 100)})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	doomed, err := e.Begin(2, []op.Op{op.IncOp("x", 7)})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e.Commit(keep); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := e.Abort(doomed); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	quiesce(t, e)
	if ok, obj := e.Cluster().Converged(); !ok {
		t.Fatalf("diverged on %q", obj)
	}
	if got := e.Cluster().Site(3).Store.Get("x"); !got.Equal(op.NumValue(100)) {
		t.Errorf("x = %v, want 100 (aborted +7 compensated)", got)
	}
	st := e.Stats()
	if st.Aborts != 1 || st.OpsUndon == 0 {
		t.Errorf("stats = %+v, want 1 abort with undo work", st)
	}
}

// TestPaperIncMulRollback reproduces §4.1 end-to-end: an Inc is aborted
// after a non-commuting Mul ran on top of it; the naive Dec would be
// wrong, so the site must roll back the Mul, compensate, and replay.
func TestPaperIncMulRollback(t *testing.T) {
	e := newEngine(t, 2, General, network.Config{Seed: 1})
	// Start x at 1 (committed).
	base, err := e.Begin(1, []op.Op{op.WriteOp("x", 1)})
	if err != nil {
		t.Fatalf("Begin base: %v", err)
	}
	e.Commit(base)
	inc, err := e.Begin(1, []op.Op{op.IncOp("x", 10)})
	if err != nil {
		t.Fatalf("Begin inc: %v", err)
	}
	mul, err := e.Begin(1, []op.Op{op.MulOp("x", 2)})
	if err != nil {
		t.Fatalf("Begin mul: %v", err)
	}
	quiesce(t, e)
	// x = (1+10)*2 = 22 everywhere.
	if got := e.Cluster().Site(2).Store.Get("x"); !got.Equal(op.NumValue(22)) {
		t.Fatalf("pre-abort x = %v, want 22", got)
	}
	if err := e.Abort(inc); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	e.Commit(mul)
	quiesce(t, e)
	// Correct compensation yields Mul alone: 1*2 = 2 (NOT the naive
	// 22-10 = 12).
	for _, sid := range e.Cluster().SiteIDs() {
		if got := e.Cluster().Site(sid).Store.Get("x"); !got.Equal(op.NumValue(2)) {
			t.Errorf("site %v: x = %v, want 2", sid, got)
		}
	}
	st := e.Stats()
	if st.OpsRedon == 0 {
		t.Errorf("expected replay work for non-commutative rollback, stats = %+v", st)
	}
}

func TestCommutativeAbortIsCheap(t *testing.T) {
	e := newEngine(t, 2, Commutative, network.Config{Seed: 1})
	var ids []interface{ String() string }
	_ = ids
	doomed, _ := e.Begin(1, []op.Op{op.IncOp("x", 5)})
	// Pile more commutative work on top.
	for i := 0; i < 10; i++ {
		id, err := e.Begin(1, []op.Op{op.IncOp("x", 1)})
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		e.Commit(id)
	}
	quiesce(t, e)
	if err := e.Abort(doomed); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	quiesce(t, e)
	if got := e.Cluster().Site(2).Store.Get("x"); !got.Equal(op.NumValue(10)) {
		t.Errorf("x = %v, want 10", got)
	}
	st := e.Stats()
	// Direct compensation: one op undone per site, nothing redone.
	if st.OpsRedon != 0 {
		t.Errorf("commutative abort redid %d ops, want 0", st.OpsRedon)
	}
	if st.OpsUndon != 2 {
		t.Errorf("commutative abort undid %d ops, want 2 (one per site)", st.OpsUndon)
	}
}

func TestUAppendAbort(t *testing.T) {
	e := newEngine(t, 2, Commutative, network.Config{Seed: 3})
	a, _ := e.Begin(1, []op.Op{op.UAppendOp("set", "keep")})
	b, _ := e.Begin(2, []op.Op{op.UAppendOp("set", "drop")})
	e.Commit(a)
	quiesce(t, e)
	e.Abort(b)
	quiesce(t, e)
	for _, sid := range e.Cluster().SiteIDs() {
		got := e.Cluster().Site(sid).Store.Get("set")
		if !got.EqualUnordered(op.ListValue("keep")) {
			t.Errorf("site %v: set = %v, want [keep]", sid, got)
		}
	}
}

func TestValidation(t *testing.T) {
	e := newEngine(t, 1, Commutative, network.Config{Seed: 1})
	if _, err := e.Begin(1, []op.Op{op.ReadOp("x")}); !errors.Is(err, ErrNotUpdate) {
		t.Errorf("read-only = %v", err)
	}
	if _, err := e.Begin(1, []op.Op{op.WriteOp("x", 1)}); !errors.Is(err, ErrNotCompensatable) {
		t.Errorf("Write under Commutative = %v", err)
	}
	if _, err := e.Begin(1, []op.Op{op.MulOp("x", 0)}); !errors.Is(err, ErrNotCompensatable) {
		t.Errorf("Mul(0) = %v", err)
	}
	g := newEngine(t, 1, General, network.Config{Seed: 1})
	if _, err := g.Begin(1, []op.Op{op.WriteOp("x", 1)}); err != nil {
		t.Errorf("Write under General = %v", err)
	}
	if _, err := g.Begin(1, []op.Op{op.MulOp("x", 0)}); !errors.Is(err, ErrNotCompensatable) {
		t.Errorf("Mul(0) under General = %v", err)
	}
}

func TestFamilyConflictRejected(t *testing.T) {
	e := newEngine(t, 1, Commutative, network.Config{Seed: 1})
	if _, err := e.Begin(1, []op.Op{op.IncOp("x", 1)}); err != nil {
		t.Fatalf("Inc: %v", err)
	}
	if _, err := e.Begin(1, []op.Op{op.UAppendOp("x", "a")}); !errors.Is(err, ErrNotCompensatable) {
		t.Errorf("UAppend on additive object = %v", err)
	}
}

func TestDoubleResolveRejected(t *testing.T) {
	e := newEngine(t, 1, Commutative, network.Config{Seed: 1})
	id, _ := e.Begin(1, []op.Op{op.IncOp("x", 1)})
	if err := e.Commit(id); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := e.Commit(id); !errors.Is(err, ErrAlreadyResolved) {
		t.Errorf("second Commit = %v", err)
	}
	if err := e.Abort(id); !errors.Is(err, ErrAlreadyResolved) {
		t.Errorf("Abort after Commit = %v", err)
	}
	if err := e.Commit(42); !errors.Is(err, ErrUnknownET) {
		t.Errorf("Commit(unknown) = %v", err)
	}
}

func TestLogTruncation(t *testing.T) {
	e := newEngine(t, 2, Commutative, network.Config{Seed: 1})
	// Committed work truncates away; a tentative entry pins the log.
	pin, _ := e.Begin(1, []op.Op{op.IncOp("x", 1)})
	var ids []interface{}
	_ = ids
	for i := 0; i < 5; i++ {
		id, _ := e.Begin(1, []op.Op{op.IncOp("x", 1)})
		e.Commit(id)
	}
	quiesce(t, e)
	if got := e.LogLen(1); got != 6 {
		t.Errorf("log pinned by tentative entry: len=%d, want 6", got)
	}
	e.Commit(pin)
	quiesce(t, e)
	if got := e.LogLen(1); got != 0 {
		t.Errorf("log after all commits: len=%d, want 0", got)
	}
}

func TestRiskAccountingAndQueryCost(t *testing.T) {
	e := newEngine(t, 2, Commutative, network.Config{Seed: 1})
	id, _ := e.Begin(1, []op.Op{op.IncOp("x", 1)})
	quiesce(t, e)
	if got := e.RiskAt(2, "x"); got != 1 {
		t.Errorf("RiskAt = %d, want 1 while tentative", got)
	}
	// An ε=0 query at a risky object must avoid importing the tentative
	// state — it serializes via RU locks and still reads the applied
	// value, but reports zero imported inconsistency only if it could
	// not be charged.  With risk 1 the cost is 1, so ε=0 forces the
	// conservative path; ε=1 accepts it.
	res, err := e.Query(2, []string{"x"}, 1)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Inconsistency != 1 {
		t.Errorf("tentative-read inconsistency = %d, want 1", res.Inconsistency)
	}
	e.Commit(id)
	quiesce(t, e)
	if got := e.RiskAt(2, "x"); got != 0 {
		t.Errorf("RiskAt after commit = %d, want 0", got)
	}
	res2, _ := e.Query(2, []string{"x"}, 0)
	if res2.Inconsistency != 0 {
		t.Errorf("post-commit query inconsistency = %d", res2.Inconsistency)
	}
}

// TestGeneralModeConvergesUnderConcurrency: sequenced forward MSets with
// scattered aborts still converge across sites.
func TestGeneralModeConvergesUnderConcurrency(t *testing.T) {
	e := newEngine(t, 3, General, network.Config{Seed: 17, MinLatency: 20 * time.Microsecond, MaxLatency: 800 * time.Microsecond})
	var mu sync.Mutex
	var doomed []interface{ Origin() clock.SiteID }
	_ = doomed
	type pair struct {
		id    interface{}
		abort bool
	}
	_ = pair{}
	var wg sync.WaitGroup
	var abortIDs []int
	_ = abortIDs
	for site := 1; site <= 3; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				var o op.Op
				if i%3 == 0 {
					o = op.MulOp("x", 2)
				} else {
					o = op.IncOp("x", int64(site))
				}
				id, err := e.Begin(clock.SiteID(site), []op.Op{o})
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				if i%4 == 3 {
					if err := e.Abort(id); err != nil {
						t.Errorf("Abort: %v", err)
					}
				} else {
					if err := e.Commit(id); err != nil {
						t.Errorf("Commit: %v", err)
					}
				}
			}
		}(site)
	}
	wg.Wait()
	mu.Lock()
	mu.Unlock()
	quiesce(t, e)
	if ok, obj := e.Cluster().Converged(); !ok {
		vals := []op.Value{}
		for _, sid := range e.Cluster().SiteIDs() {
			vals = append(vals, e.Cluster().Site(sid).Store.Get(obj))
		}
		t.Fatalf("diverged on %q: %v", obj, vals)
	}
}

func TestUpdateAutoCommit(t *testing.T) {
	e, err := New(Config{Core: core.Config{Sites: 2, Net: network.Config{Seed: 1}}, Mode: Commutative, AutoCommit: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if _, err := e.Update(1, []op.Op{op.IncOp("x", 3)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := e.Cluster().Quiesce(5 * time.Second); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if got := e.Stats().Commits; got != 1 {
		t.Errorf("auto-commit count = %d", got)
	}
	if got := e.LogLen(2); got != 0 {
		t.Errorf("log not truncated after auto-commit: %d", got)
	}
}
