// Package compe implements COMPE, the compensation-based backward
// replica-control method of §4.
//
// Forward methods assume update ETs have committed before propagation;
// COMPE instead lets MSets run optimistically before the global update
// commits: "for performance reasons, the system may start running MSets
// before the global update is committed.  To allow an MSet to commit
// asynchronously, the system must be able to compensate for its results
// if the global update aborts."
//
// Each site remembers its executed MSets (with the values they
// overwrote) "until there is no risk of rollback".  On abort, a
// compensation MSet is broadcast and each site undoes the target
// locally:
//
//   - if every logged operation commutes with the target's, "the system
//     can simply apply the compensation without any overhead";
//   - otherwise the site rolls the log back in reverse order to the
//     target, compensates it, and replays the remainder — the paper's
//     full-log rollback, illustrated by the Inc(x,10)·Mul(x,2) example.
//
// Divergence bounding follows §4.2's saga discussion: the lock-counters
// of a tentative ET are held until its commit or abort record arrives,
// so queries price reads by the number of potential compensations they
// may be exposed to.
package compe

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"esr/internal/clock"
	"esr/internal/core"
	"esr/internal/divergence"
	"esr/internal/et"
	"esr/internal/lock"
	"esr/internal/op"
	"esr/internal/replica"
	"esr/internal/trace"
)

// Mode selects the operation discipline, which determines rollback cost.
type Mode int

const (
	// Commutative restricts updates to commutative, value-independently
	// compensatable operations; aborts apply a single compensation MSet.
	Commutative Mode = iota
	// General admits any compensatable update operations; aborts roll
	// back the log suffix, compensate, and replay.
	General
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == General {
		return "general"
	}
	return "commutative"
}

// Errors returned by the engine.
var (
	// ErrNotUpdate reports an ET with no update operation.
	ErrNotUpdate = errors.New("compe: ET contains no update operation")
	// ErrNotCompensatable reports an operation that cannot be undone
	// (Read, or Multiply by zero), or — in Commutative mode — one
	// outside the commutative families.
	ErrNotCompensatable = errors.New("compe: operation not compensatable under the mode")
	// ErrUnknownET reports a Commit/Abort of an ET the engine never saw.
	ErrUnknownET = errors.New("compe: unknown ET")
	// ErrAlreadyResolved reports a second Commit/Abort of the same ET.
	ErrAlreadyResolved = errors.New("compe: ET already committed or aborted")
)

type status int

const (
	tentative status = iota
	committed
	aborted
)

// Stats counts compensation activity for the E8 experiment.
type Stats struct {
	Aborts   uint64 // aborted update ETs
	Commits  uint64 // committed update ETs (explicit or auto)
	OpsUndon uint64 // operations undone across all sites during rollbacks
	OpsRedon uint64 // operations re-applied across all sites during replays
}

// Config parameterizes a COMPE engine.
type Config struct {
	// Core configures the cluster chassis.
	Core core.Config
	// Mode selects the operation discipline.
	Mode Mode
	// AutoCommit makes Update commit immediately after broadcasting,
	// which lets the engine serve the plain core.Engine interface.
	// Explicit sagas use Begin/Commit/Abort regardless of this setting.
	AutoCommit bool
}

type logEntry struct {
	m     et.MSet
	prevs []op.Value // value of each op's object immediately before it ran
}

type siteLog struct {
	mu      sync.Mutex
	entries []logEntry
	risk    map[string]int // object -> tentative ETs applied here, unresolved
	nextSeq uint64         // next forward sequence number (General mode)
	applied map[et.ID]bool // forward ETs applied here whose resolution record is still pending
}

// Engine is the COMPE replica-control engine.
type Engine struct {
	cfg Config
	c   *core.Cluster

	mu       sync.Mutex
	status   map[et.ID]status
	ops      map[et.ID][]op.Op // forward ops, for commit/abort bookkeeping
	families map[string]op.Kind
	stats    Stats

	logs map[clock.SiteID]*siteLog
}

// New builds and starts a COMPE engine.
func New(cfg Config) (*Engine, error) {
	cfg.Core.LockTable = lock.COMMU
	c, err := core.New(cfg.Core)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		c:        c,
		status:   make(map[et.ID]status),
		ops:      make(map[et.ID][]op.Op),
		families: make(map[string]op.Kind),
		logs:     make(map[clock.SiteID]*siteLog),
	}
	for _, id := range c.SiteIDs() {
		e.logs[id] = &siteLog{risk: make(map[string]int), nextSeq: 1, applied: make(map[et.ID]bool)}
	}
	c.Setup(func(s *replica.Site) replica.ApplyFunc {
		sl := e.logs[s.ID]
		return func(m et.MSet) error { return e.apply(s, sl, m) }
	})
	return e, nil
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "COMPE" }

// Traits implements core.Engine; the values are the COMPENSATION column
// of the paper's Table 1.
func (e *Engine) Traits() core.Traits {
	return core.Traits{
		Name:             "COMPE",
		Restriction:      `"operation value"`,
		Applicability:    "Backwards",
		AsyncPropagation: "Query & Update",
		SortingTime:      "N/A",
	}
}

// Cluster implements core.Engine.
func (e *Engine) Cluster() *core.Cluster { return e.c }

// Mode returns the engine's operation discipline.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Stats returns a snapshot of compensation activity.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Update implements core.Engine: a tentative update followed (when
// AutoCommit is set) by an immediate commit.
func (e *Engine) Update(origin clock.SiteID, ops []op.Op) (et.ID, error) {
	id, err := e.Begin(origin, ops)
	if err != nil {
		return 0, err
	}
	if e.cfg.AutoCommit {
		if err := e.Commit(id); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// UpdateBurst executes a burst of update ETs at origin as one
// propagation batch: all tentative MSets leave as a single batch per
// destination, and under AutoCommit all their commit records follow as a
// second batch — two fsyncs per link for the whole burst instead of two
// per update.
func (e *Engine) UpdateBurst(origin clock.SiteID, bursts [][]op.Op) ([]et.ID, error) {
	ids, err := e.BeginBurst(origin, bursts)
	if err != nil {
		return nil, err
	}
	if e.cfg.AutoCommit {
		recs := make([]et.MSet, 0, len(ids))
		for _, id := range ids {
			if err := e.resolve(id, committed); err != nil {
				return nil, err
			}
			recs = append(recs, et.MSet{ET: e.c.NextET(origin), Origin: origin, Target: id,
				TS: e.c.Site(origin).Clock.Tick()})
		}
		if err := e.c.BroadcastAll(recs); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// BeginBurst executes a burst of tentative update ETs at origin as one
// propagation batch.  Every entry is admitted and registered as an
// independent saga step; in General mode the burst reserves its forward
// sequence range in a single order-server round trip.
func (e *Engine) BeginBurst(origin clock.SiteID, bursts [][]op.Op) ([]et.ID, error) {
	if len(bursts) == 0 {
		return nil, nil
	}
	s := e.c.Site(origin)
	if s == nil {
		return nil, fmt.Errorf("compe: unknown site %v", origin)
	}
	allUpdates := make([][]op.Op, len(bursts))
	for i, ops := range bursts {
		var updates []op.Op
		for _, o := range ops {
			if !o.Kind.IsUpdate() {
				continue
			}
			if err := e.admissible(o); err != nil {
				return nil, err
			}
			updates = append(updates, o)
		}
		if len(updates) == 0 {
			return nil, ErrNotUpdate
		}
		if e.cfg.Mode == Commutative {
			if err := e.reserveFamilies(updates); err != nil {
				return nil, err
			}
		}
		allUpdates[i] = updates
	}
	var seq0 uint64
	var seqT0 time.Time
	if e.cfg.Mode == General {
		var err error
		seqT0 = time.Now()
		seq0, err = e.c.NextSeqN(origin, uint64(len(bursts)))
		if err != nil {
			return nil, err
		}
	}
	ids := make([]et.ID, len(bursts))
	msets := make([]et.MSet, len(bursts))
	for i, updates := range allUpdates {
		id := e.c.NextET(origin)
		ids[i] = id
		e.mu.Lock()
		e.status[id] = tentative
		e.ops[id] = updates
		e.mu.Unlock()
		var seq uint64
		if e.cfg.Mode == General {
			seq = seq0 + uint64(i)
		}
		msets[i] = et.MSet{ET: id, Origin: origin, Seq: seq, TS: s.Clock.Tick(), Ops: updates}
		e.c.RecordUpdate(id, bursts[i])
	}
	if err := e.c.BroadcastAll(msets); err != nil {
		return nil, err
	}
	if e.cfg.Mode == General {
		e.c.RecordSequenceSpan(origin, msets, seqT0)
	}
	return ids, nil
}

// Begin executes a tentative update ET at origin: its MSet propagates and
// applies optimistically at every site, while its lock-counters stay held
// until Commit or Abort resolves it.
func (e *Engine) Begin(origin clock.SiteID, ops []op.Op) (et.ID, error) {
	s := e.c.Site(origin)
	if s == nil {
		return 0, fmt.Errorf("compe: unknown site %v", origin)
	}
	var updates []op.Op
	for _, o := range ops {
		if !o.Kind.IsUpdate() {
			continue
		}
		if err := e.admissible(o); err != nil {
			return 0, err
		}
		updates = append(updates, o)
	}
	if len(updates) == 0 {
		return 0, ErrNotUpdate
	}
	if e.cfg.Mode == Commutative {
		if err := e.reserveFamilies(updates); err != nil {
			return 0, err
		}
	}
	// In General mode forward MSets do not commute, so sites must apply
	// them in one global order or the replicas would diverge regardless
	// of compensation — §4.2 pairs full-log rollback with ORDUP-style
	// processing ("This is the case with ORDUP operations").
	var seq uint64
	if e.cfg.Mode == General {
		var err error
		seq, err = e.c.NextSeq(origin)
		if err != nil {
			return 0, err
		}
	}
	id := e.c.NextET(origin)
	e.mu.Lock()
	e.status[id] = tentative
	e.ops[id] = updates
	e.mu.Unlock()
	m := et.MSet{ET: id, Origin: origin, Seq: seq, TS: s.Clock.Tick(), Ops: updates}
	e.c.RecordUpdate(id, ops)
	if err := e.c.Broadcast(m); err != nil {
		return 0, err
	}
	return id, nil
}

// reserveFamilies pins each object to one commutative operation kind
// class (additive or unordered-append), rejecting cross-family mixes
// that would not commute.
func (e *Engine) reserveFamilies(updates []op.Op) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	staged := make(map[string]op.Kind, len(updates))
	for _, o := range updates {
		class := o.Kind
		if class == op.Decrement {
			class = op.Increment // one additive family
		}
		cur, ok := staged[o.Object]
		if !ok {
			cur, ok = e.families[o.Object]
		}
		if ok && cur != class {
			return fmt.Errorf("%w: %v conflicts with the object's operation family",
				ErrNotCompensatable, o)
		}
		staged[o.Object] = class
	}
	for obj, k := range staged {
		e.families[obj] = k
	}
	return nil
}

// admissible validates one update operation against the mode.
func (e *Engine) admissible(o op.Op) error {
	if !o.Compensatable() {
		return fmt.Errorf("%w: %v", ErrNotCompensatable, o)
	}
	if e.cfg.Mode == Commutative {
		switch o.Kind {
		case op.Increment, op.Decrement, op.UnorderedAppend:
		default:
			return fmt.Errorf("%w: %v requires General mode", ErrNotCompensatable, o)
		}
	}
	return nil
}

// Commit resolves a tentative ET as globally committed and broadcasts
// its commit record, releasing lock-counters (and enabling log
// truncation) as the record reaches each site.
func (e *Engine) Commit(id et.ID) error {
	if err := e.resolve(id, committed); err != nil {
		return err
	}
	rec := et.MSet{ET: e.c.NextET(id.Origin()), Origin: id.Origin(), Target: id,
		TS: e.c.Site(id.Origin()).Clock.Tick()}
	return e.c.Broadcast(rec)
}

// Abort resolves a tentative ET as globally aborted and broadcasts its
// compensation MSet; every site undoes the ET locally per §4.2.
func (e *Engine) Abort(id et.ID) error {
	if err := e.resolve(id, aborted); err != nil {
		return err
	}
	rec := et.MSet{ET: e.c.NextET(id.Origin()), Origin: id.Origin(), Target: id,
		Compensation: true, TS: e.c.Site(id.Origin()).Clock.Tick()}
	return e.c.Broadcast(rec)
}

func (e *Engine) resolve(id et.ID, to status) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.status[id]
	if !ok {
		return ErrUnknownET
	}
	if st != tentative {
		return fmt.Errorf("%w: %v", ErrAlreadyResolved, id)
	}
	e.status[id] = to
	if to == committed {
		e.stats.Commits++
	} else {
		e.stats.Aborts++
	}
	return nil
}

// Query executes a query ET under an ε limit.  Reads are priced by their
// overlap plus the number of unresolved tentative ETs that touched the
// object here — the conservative "number of potential compensations"
// bound of §4.2.
func (e *Engine) Query(site clock.SiteID, objects []string, eps divergence.Limit) (et.QueryResult, error) {
	sl := e.logs[site]
	if sl == nil {
		return et.QueryResult{}, fmt.Errorf("compe: unknown site %v", site)
	}
	return core.QueryAtSite(e.c, site, objects, eps,
		func(s *replica.Site, obj string, baseline uint64) int {
			sl.mu.Lock()
			risk := sl.risk[obj]
			sl.mu.Unlock()
			return core.OverlapCost(s, obj, baseline) + risk
		})
}

// RiskAt reports the number of unresolved tentative ETs applied at the
// site that touched the object (its retained lock-counter).
func (e *Engine) RiskAt(site clock.SiteID, object string) int {
	sl := e.logs[site]
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.risk[object]
}

// LogLen reports the number of remembered MSets at the site (the
// rollback exposure).
func (e *Engine) LogLen(site clock.SiteID) int {
	sl := e.logs[site]
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.entries)
}

// Close implements core.Engine.
func (e *Engine) Close() error { return e.c.Close() }

func (e *Engine) apply(s *replica.Site, sl *siteLog, m et.MSet) error {
	switch {
	case m.Compensation:
		return e.applyCompensation(s, sl, m)
	case m.Target != 0:
		return e.applyCommitRecord(sl, m)
	default:
		return e.applyForward(s, sl, m)
	}
}

// applyForward optimistically applies a tentative MSet and remembers it.
// In General mode forward MSets apply in global sequence order.
func (e *Engine) applyForward(s *replica.Site, sl *siteLog, m et.MSet) error {
	if e.cfg.Mode == General {
		sl.mu.Lock()
		switch {
		case m.Seq < sl.nextSeq:
			sl.mu.Unlock()
			return nil // duplicate
		case m.Seq > sl.nextSeq:
			sl.mu.Unlock()
			return replica.ErrHold
		}
		sl.mu.Unlock()
	}
	tx := lock.TxID(m.ET)
	objs := distinctObjects(m.Ops)
	sort.Strings(objs)
	for _, obj := range objs {
		if err := s.Locks.Acquire(tx, lock.WU, firstOpOn(m.Ops, obj)); err != nil {
			s.Locks.ReleaseAll(tx)
			return fmt.Errorf("compe: apply lock on %q: %w", obj, err)
		}
	}
	sl.mu.Lock()
	prevs := make([]op.Value, len(m.Ops))
	vers := make(map[string]op.Value, len(objs))
	for i, o := range m.Ops {
		prevs[i] = s.Store.Get(o.Object)
		v := s.Store.Apply(o)
		if o.Kind.IsUpdate() {
			vers[o.Object] = v
		}
	}
	// Dual-write into the multi-version store for snapshot reads
	// (idempotent at the same TS, covering redelivery).
	for obj, v := range vers {
		s.MV.InstallMonotone(obj, m.TS, v)
	}
	sl.entries = append(sl.entries, logEntry{m: m, prevs: prevs})
	sl.applied[m.ET] = true
	for _, obj := range objs {
		sl.risk[obj]++
	}
	if e.cfg.Mode == General {
		sl.nextSeq++
	}
	sl.mu.Unlock()
	s.Locks.ReleaseAll(tx)
	return nil
}

// applyCommitRecord marks the target committed at this site: its
// lock-counters drop and the committed log prefix becomes truncatable.
func (e *Engine) applyCommitRecord(sl *siteLog, m et.MSet) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if !sl.applied[m.Target] {
		// Forward MSet not yet applied here.  Per-origin FIFO makes
		// this transient: hold and retry.
		return replica.ErrHold
	}
	delete(sl.applied, m.Target)
	idx := indexOf(sl.entries, m.Target)
	if idx >= 0 {
		for _, obj := range distinctObjects(sl.entries[idx].m.Ops) {
			if sl.risk[obj] > 0 {
				sl.risk[obj]--
			}
		}
	}
	// idx < 0 means an earlier truncation already dropped the entry (its
	// committed status became visible before this record arrived).  Its
	// risk counters are still held — truncation never touches them — so
	// release them using the engine's record of the ET's operations.
	if idx < 0 {
		e.mu.Lock()
		ops := e.ops[m.Target]
		e.mu.Unlock()
		for _, obj := range distinctObjects(ops) {
			if sl.risk[obj] > 0 {
				sl.risk[obj]--
			}
		}
	}
	e.truncateLocked(sl)
	return nil
}

// applyCompensation undoes the target MSet at this site (§4.2).
func (e *Engine) applyCompensation(s *replica.Site, sl *siteLog, m et.MSet) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if !sl.applied[m.Target] {
		return replica.ErrHold
	}
	idx := indexOf(sl.entries, m.Target)
	if idx < 0 {
		// Unreachable: aborted entries are never truncated before their
		// compensation applies.  Treat defensively as a no-op.
		delete(sl.applied, m.Target)
		return nil
	}
	delete(sl.applied, m.Target)
	target := sl.entries[idx]

	if e.commutesWithSuffix(sl.entries[idx+1:], target.m.Ops) {
		// "If all MSets on the log are commutative, then COMPE simply
		// runs the compensation MSet and continues."
		e.undoEntry(s, target)
		e.countUndo(len(target.m.Ops), 0)
	} else {
		// Full rollback: undo the suffix in reverse, compensate the
		// target, replay the suffix re-recording overwritten values.
		suffix := sl.entries[idx+1:]
		for i := len(suffix) - 1; i >= 0; i-- {
			e.undoEntry(s, suffix[i])
		}
		e.undoEntry(s, target)
		redone := 0
		for i := range suffix {
			for j, o := range suffix[i].m.Ops {
				suffix[i].prevs[j] = s.Store.Get(o.Object)
				s.Store.Apply(o)
				redone++
			}
		}
		undone := len(target.m.Ops)
		for _, en := range suffix {
			undone += len(en.m.Ops)
		}
		e.countUndo(undone, redone)
	}
	for _, obj := range distinctObjects(target.m.Ops) {
		if sl.risk[obj] > 0 {
			sl.risk[obj]--
		}
	}
	sl.entries = append(sl.entries[:idx], sl.entries[idx+1:]...)
	// Refresh the multi-version chains with the post-compensation values
	// at the compensation MSet's timestamp (§4.2's "adding another
	// version bearing the previous value"), so snapshot reads after the
	// rollback converge with the single-version store.
	touched := make(map[string]bool)
	for _, o := range target.m.Ops {
		touched[o.Object] = true
	}
	for _, en := range sl.entries[idx:] {
		for _, o := range en.m.Ops {
			touched[o.Object] = true
		}
	}
	for obj := range touched {
		s.MV.InstallMonotone(obj, m.TS, s.Store.Get(obj))
	}
	e.truncateLocked(sl)
	e.c.SiteMetrics(s.ID).Compensations.Inc()
	e.c.Trace.RecordMSetf(trace.Compensate, int(s.ID), m.Target.String(), m.MsgID(),
		"log=%d", len(sl.entries))
	return nil
}

// undoEntry applies the compensation of each op in reverse order.
func (e *Engine) undoEntry(s *replica.Site, en logEntry) {
	for i := len(en.m.Ops) - 1; i >= 0; i-- {
		comp, ok := en.m.Ops[i].Compensate(en.prevs[i])
		if !ok {
			continue // admissibility check makes this unreachable
		}
		cur := s.Store.Get(comp.Object)
		s.Store.Apply(restoreVia(comp, cur))
	}
}

// restoreVia returns comp unchanged; it exists to keep the undo path in
// one place should value-checking be added.
func restoreVia(comp op.Op, _ op.Value) op.Op { return comp }

func (e *Engine) countUndo(undone, redone int) {
	e.mu.Lock()
	e.stats.OpsUndon += uint64(undone)
	e.stats.OpsRedon += uint64(redone)
	e.mu.Unlock()
}

// commutesWithSuffix reports whether every target op commutes with every
// op logged after it, which licenses direct compensation.
func (e *Engine) commutesWithSuffix(suffix []logEntry, targetOps []op.Op) bool {
	for _, en := range suffix {
		for _, a := range en.m.Ops {
			for _, b := range targetOps {
				if !a.Commutes(b) {
					return false
				}
			}
		}
	}
	return true
}

// truncateLocked drops the resolved prefix of the log: entries up to the
// first still-tentative entry can never be reached by a rollback.  "The
// COMPE replica control method must remember the executed MSets until
// there is no risk of rollback."
func (e *Engine) truncateLocked(sl *siteLog) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cut := 0
	for _, en := range sl.entries {
		if e.status[en.m.ET] != committed {
			break
		}
		cut++
	}
	if cut > 0 {
		sl.entries = append([]logEntry(nil), sl.entries[cut:]...)
	}
}

func distinctObjects(ops []op.Op) []string {
	seen := make(map[string]bool, len(ops))
	var out []string
	for _, o := range ops {
		if o.Kind.IsUpdate() && !seen[o.Object] {
			seen[o.Object] = true
			out = append(out, o.Object)
		}
	}
	return out
}

func firstOpOn(ops []op.Op, object string) op.Op {
	for _, o := range ops {
		if o.Object == object && o.Kind.IsUpdate() {
			return o
		}
	}
	return op.Op{Kind: op.Write, Object: object}
}

func indexOf(entries []logEntry, id et.ID) int {
	for i, en := range entries {
		if en.m.ET == id {
			return i
		}
	}
	return -1
}
