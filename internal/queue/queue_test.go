package queue

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// queues returns one constructor per implementation so every behavioural
// test runs against both.
func queues(t *testing.T) map[string]func() Queue {
	t.Helper()
	dir := t.TempDir()
	var n int
	return map[string]func() Queue{
		"mem": func() Queue { return NewMem() },
		"file": func() Queue {
			n++
			q, err := Open(filepath.Join(dir, fmt.Sprintf("q%d.journal", n)))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			return q
		},
	}
}

func TestFIFOOrder(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			defer q.Close()
			for i := uint64(1); i <= 5; i++ {
				if err := q.Enqueue(Message{ID: i, Payload: []byte{byte(i)}}); err != nil {
					t.Fatalf("Enqueue: %v", err)
				}
			}
			for i := uint64(1); i <= 5; i++ {
				m, ok, err := q.Peek()
				if err != nil || !ok {
					t.Fatalf("Peek: ok=%v err=%v", ok, err)
				}
				if m.ID != i {
					t.Fatalf("Peek order: got %d, want %d", m.ID, i)
				}
				if err := q.Ack(m.ID); err != nil {
					t.Fatalf("Ack: %v", err)
				}
			}
			if _, ok, _ := q.Peek(); ok {
				t.Errorf("queue should be empty after acking everything")
			}
		})
	}
}

func TestDuplicateEnqueueSuppressed(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			defer q.Close()
			m := Message{ID: 7, Payload: []byte("x")}
			for i := 0; i < 3; i++ {
				if err := q.Enqueue(m); err != nil {
					t.Fatalf("Enqueue: %v", err)
				}
			}
			if got := q.Len(); got != 1 {
				t.Errorf("Len = %d after duplicate enqueues, want 1", got)
			}
			// Even after acking, re-enqueue of a seen ID stays suppressed:
			// the sender's retry after a successful delivery must not
			// reintroduce the message.
			if err := q.Ack(7); err != nil {
				t.Fatalf("Ack: %v", err)
			}
			if err := q.Enqueue(m); err != nil {
				t.Fatalf("Enqueue: %v", err)
			}
			if got := q.Len(); got != 0 {
				t.Errorf("Len = %d after re-enqueue of acked ID, want 0", got)
			}
		})
	}
}

func TestAckUnknownIsNoop(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			defer q.Close()
			if err := q.Ack(99); err != nil {
				t.Errorf("Ack(unknown) = %v, want nil", err)
			}
		})
	}
}

func TestAckMiddleMessage(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			defer q.Close()
			for i := uint64(1); i <= 3; i++ {
				q.Enqueue(Message{ID: i})
			}
			if err := q.Ack(2); err != nil {
				t.Fatalf("Ack(2): %v", err)
			}
			m, _, _ := q.Peek()
			if m.ID != 1 {
				t.Errorf("head = %d, want 1", m.ID)
			}
			q.Ack(1)
			m, _, _ = q.Peek()
			if m.ID != 3 {
				t.Errorf("head = %d, want 3", m.ID)
			}
		})
	}
}

func TestAllSnapshot(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			defer q.Close()
			for i := uint64(1); i <= 3; i++ {
				q.Enqueue(Message{ID: i})
			}
			q.Ack(2)
			all, err := q.All()
			if err != nil {
				t.Fatalf("All: %v", err)
			}
			if len(all) != 2 || all[0].ID != 1 || all[1].ID != 3 {
				t.Errorf("All = %v, want IDs [1 3]", all)
			}
			// The snapshot must be independent of queue state.
			q.Ack(1)
			if len(all) != 2 {
				t.Errorf("snapshot mutated by later Ack")
			}
		})
	}
}

func TestClosedQueueErrors(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			q.Close()
			if err := q.Enqueue(Message{ID: 1}); !errors.Is(err, ErrClosed) {
				t.Errorf("Enqueue after Close = %v, want ErrClosed", err)
			}
			if _, _, err := q.Peek(); !errors.Is(err, ErrClosed) {
				t.Errorf("Peek after Close = %v, want ErrClosed", err)
			}
			if _, err := q.All(); !errors.Is(err, ErrClosed) {
				t.Errorf("All after Close = %v, want ErrClosed", err)
			}
			if err := q.Ack(1); !errors.Is(err, ErrClosed) {
				t.Errorf("Ack after Close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestFileRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := q.Enqueue(Message{ID: i, Payload: []byte{byte(i), byte(i)}}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	q.Ack(1)
	q.Ack(3)
	q.Close() // crash point

	q2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	if got := q2.Len(); got != 2 {
		t.Fatalf("recovered Len = %d, want 2", got)
	}
	m, _, _ := q2.Peek()
	if m.ID != 2 || len(m.Payload) != 2 || m.Payload[0] != 2 {
		t.Errorf("recovered head = %+v, want ID 2 payload [2 2]", m)
	}
	// Dedup state must also survive: retry of a delivered message.
	q2.Enqueue(Message{ID: 1})
	if got := q2.Len(); got != 2 {
		t.Errorf("Len after re-enqueue of recovered-acked ID = %d, want 2", got)
	}
}

func TestFileTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	q.Enqueue(Message{ID: 1, Payload: []byte("first")})
	q.Enqueue(Message{ID: 2, Payload: []byte("second")})
	q.Close()

	// Simulate a crash mid-append by truncating the journal partway
	// through the final record.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	q2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen torn journal: %v", err)
	}
	if got := q2.Len(); got != 1 {
		t.Fatalf("Len after torn tail = %d, want 1 (second record discarded)", got)
	}
	// The queue must remain writable after tail truncation.
	if err := q2.Enqueue(Message{ID: 3, Payload: []byte("third")}); err != nil {
		t.Fatalf("Enqueue after recovery: %v", err)
	}
	q2.Close()

	q3, err := Open(path)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer q3.Close()
	if got := q3.Len(); got != 2 {
		t.Errorf("Len after append-post-recovery = %d, want 2", got)
	}
}

func TestFileRecoveryProperty(t *testing.T) {
	// Random interleavings of enqueue/ack followed by reopen always
	// recover exactly the unacked messages in order.
	dir := t.TempDir()
	var fileN int
	f := func(ops []bool) bool {
		fileN++
		path := filepath.Join(dir, fmt.Sprintf("p%d.journal", fileN))
		q, err := Open(path)
		if err != nil {
			return false
		}
		var want []uint64
		var next uint64
		for _, enq := range ops {
			if enq || len(want) == 0 {
				next++
				q.Enqueue(Message{ID: next})
				want = append(want, next)
			} else {
				q.Ack(want[0])
				want = want[1:]
			}
		}
		q.Close()
		q2, err := Open(path)
		if err != nil {
			return false
		}
		defer q2.Close()
		if q2.Len() != len(want) {
			return false
		}
		for _, id := range want {
			m, ok, err := q2.Peek()
			if err != nil || !ok || m.ID != id {
				return false
			}
			q2.Ack(id)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeliveryRetriesUntilSuccess(t *testing.T) {
	q := NewMem()
	defer q.Close()
	var fails atomic.Int32
	fails.Store(3)
	var delivered atomic.Int32
	d := NewDelivery(q, func(m Message) error {
		if fails.Add(-1) >= 0 {
			return errors.New("link down")
		}
		delivered.Add(1)
		return nil
	}, time.Millisecond, 4*time.Millisecond)
	d.Start()
	defer d.Stop()

	q.Enqueue(Message{ID: 1})
	d.Kick()
	deadline := time.Now().Add(2 * time.Second)
	for delivered.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != 1 {
		t.Fatalf("message not delivered after retries")
	}
	if q.Len() != 0 {
		t.Errorf("delivered message not acked: Len = %d", q.Len())
	}
}

func TestDeliveryPreservesOrder(t *testing.T) {
	q := NewMem()
	defer q.Close()
	var mu sync.Mutex
	var got []uint64
	d := NewDelivery(q, func(m Message) error {
		mu.Lock()
		got = append(got, m.ID)
		mu.Unlock()
		return nil
	}, time.Millisecond, time.Millisecond)
	for i := uint64(1); i <= 20; i++ {
		q.Enqueue(Message{ID: i})
	}
	d.Start()
	d.Kick()
	deadline := time.Now().Add(2 * time.Second)
	for q.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 20 {
		t.Fatalf("delivered %d messages, want 20", len(got))
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("delivery order violated at %d: got %d", i, id)
		}
	}
}

func TestDeliveryStopIsIdempotentAndPrompt(t *testing.T) {
	q := NewMem()
	defer q.Close()
	d := NewDelivery(q, func(Message) error { return errors.New("always fails") }, time.Millisecond, time.Second)
	d.Start()
	q.Enqueue(Message{ID: 1})
	d.Kick()
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		d.Stop()
		d.Stop() // second Stop must not panic or hang
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Stop did not return promptly")
	}
}

func TestEnqueueBatchAndAckBatch(t *testing.T) {
	for name, mk := range queues(t) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			defer q.Close()
			batch := []Message{
				{ID: 1, Payload: []byte("a")},
				{ID: 2, Payload: []byte("b")},
				{ID: 1, Payload: []byte("dup")}, // duplicate inside the batch
				{ID: 3, Payload: []byte("c")},
			}
			if err := q.EnqueueBatch(batch); err != nil {
				t.Fatalf("EnqueueBatch: %v", err)
			}
			if got := q.Len(); got != 3 {
				t.Fatalf("Len = %d after batch with internal dup, want 3", got)
			}
			got, err := q.PeekN(2)
			if err != nil {
				t.Fatalf("PeekN: %v", err)
			}
			if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
				t.Fatalf("PeekN(2) = %v, want IDs [1 2]", got)
			}
			// PeekN beyond the queue length returns what exists.
			if got, _ := q.PeekN(10); len(got) != 3 {
				t.Fatalf("PeekN(10) returned %d messages, want 3", len(got))
			}
			// AckBatch with unknown IDs mixed in is a no-op for those.
			if err := q.AckBatch([]uint64{2, 99, 1}); err != nil {
				t.Fatalf("AckBatch: %v", err)
			}
			m, ok, _ := q.Peek()
			if !ok || m.ID != 3 {
				t.Fatalf("head after AckBatch = %v ok=%v, want ID 3", m, ok)
			}
		})
	}
}

func TestFileBatchSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueBatch([]Message{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := q.AckBatch([]uint64{1, 3}); err != nil {
		t.Fatal(err)
	}
	q.Close()
	q2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	all, _ := q2.All()
	if len(all) != 2 || all[0].ID != 2 || all[1].ID != 4 {
		t.Fatalf("recovered %v, want IDs [2 4]", all)
	}
}

func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// A batch of 64 must cost far fewer fsyncs than 64 singles would.
	batch := make([]Message, 64)
	for i := range batch {
		batch[i] = Message{ID: uint64(i + 1)}
	}
	if err := q.EnqueueBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := q.Syncs(); got != 1 {
		t.Errorf("EnqueueBatch(64) cost %d fsyncs, want 1", got)
	}
	// Concurrent single enqueues group-commit: total fsyncs must come in
	// well under one per write.
	var wg sync.WaitGroup
	const writers, per = 8, 25
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				q.Enqueue(Message{ID: 1000 + base*per + i})
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := q.Len(); got != 64+writers*per {
		t.Fatalf("Len = %d, want %d", got, 64+writers*per)
	}
}

func TestDeliveryWindowBatchesSendsAndAcks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var mu sync.Mutex
	var frames [][]uint64
	d := NewDelivery(q, func(m Message) error {
		mu.Lock()
		frames = append(frames, []uint64{m.ID})
		mu.Unlock()
		return nil
	}, time.Millisecond, 4*time.Millisecond)
	d.SetWindow(8)
	d.SetBatchSend(func(ms []Message) error {
		ids := make([]uint64, len(ms))
		for i, m := range ms {
			ids[i] = m.ID
		}
		mu.Lock()
		frames = append(frames, ids)
		mu.Unlock()
		return nil
	})
	batch := make([]Message, 32)
	for i := range batch {
		batch[i] = Message{ID: uint64(i + 1)}
	}
	if err := q.EnqueueBatch(batch); err != nil {
		t.Fatal(err)
	}
	enqSyncs := q.Syncs()
	d.Start()
	d.Kick()
	deadline := time.Now().Add(2 * time.Second)
	for q.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	mu.Lock()
	defer mu.Unlock()
	// 32 messages through a window of 8: exactly 4 frames, in FIFO order.
	var got []uint64
	for _, f := range frames {
		got = append(got, f...)
	}
	if len(got) != 32 {
		t.Fatalf("delivered %d messages, want 32", len(got))
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("order violated at %d: got %d", i, id)
		}
	}
	if len(frames) > 8 {
		t.Errorf("used %d frames for 32 messages with window 8, want ≤ 8", len(frames))
	}
	// Ack fsyncs are batched too: one per frame, not one per message.
	ackSyncs := q.Syncs() - enqSyncs
	if ackSyncs > uint64(len(frames))+1 {
		t.Errorf("acking cost %d fsyncs over %d frames", ackSyncs, len(frames))
	}
}

func TestDeliveryKickResetsBackoff(t *testing.T) {
	q := NewMem()
	defer q.Close()
	var gate atomic.Bool
	var delivered atomic.Int32
	d := NewDelivery(q, func(m Message) error {
		if !gate.Load() {
			return errors.New("link down")
		}
		delivered.Add(1)
		return nil
	}, time.Millisecond, 10*time.Second)
	d.Start()
	defer d.Stop()
	q.Enqueue(Message{ID: 1})
	d.Kick()
	// Let the backoff climb toward maxWait (1ms, 2ms, 4ms, …).
	time.Sleep(100 * time.Millisecond)
	// Heal the link and kick — delivery must happen promptly, not after
	// the stale multi-second penalty delay.
	gate.Store(true)
	d.Kick()
	deadline := time.Now().Add(500 * time.Millisecond)
	for delivered.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() == 0 {
		t.Fatalf("kick after heal did not deliver promptly; stale backoff penalty still applied")
	}
}

func TestConcurrentEnqueueAck(t *testing.T) {
	q := NewMem()
	defer q.Close()
	var wg sync.WaitGroup
	const n = 200
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < n; i++ {
				q.Enqueue(Message{ID: base*n + i + 1})
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := q.Len(); got != 4*n {
		t.Fatalf("Len = %d, want %d", got, 4*n)
	}
	for q.Len() > 0 {
		m, ok, err := q.Peek()
		if err != nil || !ok {
			t.Fatalf("Peek: ok=%v err=%v", ok, err)
		}
		q.Ack(m.ID)
	}
}
