// Package queue implements the stable queues the paper assumes for MSet
// propagation (§2.2): persistent FIFO queues that survive crashes and
// support at-least-once delivery with duplicate suppression.
//
// "We assume the system maintains the unprocessed MSets in some stable
// storage, such as stable queues [5] and persistent pipes [17]."
//
// Two implementations are provided: Mem, an in-memory queue for tests and
// simulations that do not model crashes, and File, a journal-backed queue
// whose contents survive Close/reopen (the crash model used by the failure
// injection tests).  A Delivery agent drains a queue through an unreliable
// send function, retrying until each message is acknowledged.
//
// The file-backed queue is built for throughput as well as durability:
//
//   - Group commit: concurrent writers stage their records and the first
//     one to reach the journal flushes everything staged with a single
//     write and a single fsync (an optional flush window lets the leader
//     linger for more joiners).  EnqueueBatch/AckBatch write a whole
//     batch under one fsync even from a single goroutine.
//   - Compaction: once acknowledged (dead) records dominate the journal,
//     the live tail is rewritten to a temporary file which atomically
//     replaces the journal; the dedup horizon survives via an explicit
//     Seen record, and recently acked IDs are retained so producer
//     retries stay idempotent while ancient entries stop leaking memory.
//   - Diagnosable corruption: replay distinguishes a torn tail (the
//     expected artifact of a crash mid-append, silently truncated) from
//     mid-file corruption, which surfaces as a *CorruptError carrying
//     the byte offset instead of silently discarding the rest of the log.
package queue

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"esr/internal/metrics"
	"esr/internal/trace"
)

// Message is one element of a stable queue.  IDs must be unique per queue;
// enqueueing an ID the queue has already seen (even if since acknowledged)
// is a no-op, which gives producers idempotent retry.
type Message struct {
	// ID uniquely identifies the message within its queue.
	ID uint64
	// Payload is the opaque message body (typically a gob-encoded MSet).
	Payload []byte
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("queue: closed")

// CorruptError reports a structurally damaged journal record that is not
// a torn tail: a record in the middle of the file (or with an impossible
// length) that cannot be decoded.  Unlike a torn tail — the expected
// artifact of a crash mid-append, which replay silently truncates — this
// indicates real corruption, and recovery must be a deliberate decision,
// so Open returns the error instead of discarding everything after the
// damage.
type CorruptError struct {
	// Path is the journal file.
	Path string
	// Offset is the byte offset of the damaged record's length prefix.
	Offset int64
	// Reason describes what failed to parse.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("queue: corrupt journal record in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// maxRecordSize bounds a single journal record.  Writers never produce
// records anywhere near this large, so a complete length prefix above it
// can only be corruption, not a torn write.
const maxRecordSize = 1 << 26

// Queue is a stable FIFO with acknowledge-to-remove semantics.
// Implementations must be safe for concurrent use.
type Queue interface {
	// Enqueue appends the message unless its ID has been seen before.
	Enqueue(Message) error
	// EnqueueBatch appends every not-yet-seen message in the batch,
	// durably, under a single flush on journal-backed implementations.
	EnqueueBatch([]Message) error
	// Peek returns the oldest unacknowledged message without removing it.
	// ok is false when the queue is empty.
	Peek() (m Message, ok bool, err error)
	// PeekN returns up to n of the oldest unacknowledged messages in FIFO
	// order without removing them.
	PeekN(n int) ([]Message, error)
	// Ack removes the message with the given ID.  Acking an unknown or
	// already-acked ID is a no-op.
	Ack(id uint64) error
	// AckBatch removes every listed message, durably, under a single
	// flush on journal-backed implementations.
	AckBatch(ids []uint64) error
	// All returns a snapshot of every unacknowledged message in FIFO
	// order.  Consumers that must process messages out of arrival order
	// (ORDUP's hold-back delivery) scan All instead of Peek.
	All() ([]Message, error)
	// Len reports the number of unacknowledged messages.
	Len() int
	// Close releases resources.  A File queue can be reopened afterwards.
	Close() error
}

// Syncer is implemented by queues whose durability costs fsyncs; the
// benchmarks read it to report fsyncs per operation.
type Syncer interface {
	// Syncs reports the cumulative number of fsync calls issued.
	Syncs() uint64
}

// Metrics instruments a stable queue.  Every field is optional (nil
// fields are no-ops, per the metrics package's nil contract); Syncs,
// when set, becomes the queue's fsync counter — the one Syncs() reads —
// unifying the ad-hoc per-queue counter with the cluster registry.
type Metrics struct {
	// Depth tracks the number of unacknowledged messages.
	Depth *metrics.Gauge
	// Enqueued counts messages accepted (dedup-fresh) into the queue.
	Enqueued *metrics.Counter
	// Acked counts messages acknowledged out of the queue.
	Acked *metrics.Counter
	// Syncs counts fsyncs (journal-backed queues only).
	Syncs *metrics.Counter
	// SyncSeconds observes each fsync's duration in nanoseconds.
	SyncSeconds *metrics.Histogram
	// DeliverSeconds observes enqueue→ack latency per message in
	// nanoseconds — the time a message spent in the queue before its
	// delivery was acknowledged.  Setting it enables per-message
	// enqueue timestamping (a map insert/delete per message).
	DeliverSeconds *metrics.Histogram
	// Compactions counts journal compactions (journal-backed only).
	Compactions *metrics.Counter
	// DirSyncErrors counts failed directory fsyncs after a journal
	// compaction's rename.  Directory sync is best effort (some
	// filesystems refuse it), but a failure means the compacted journal's
	// name may not survive a power cut — worth counting, not hiding.
	DirSyncErrors *metrics.Counter
}

// Instrumentable is implemented by queues that accept instrumentation;
// call SetMetrics right after construction, before concurrent use.
type Instrumentable interface {
	SetMetrics(Metrics)
}

// Mem is an in-memory Queue.  The zero value is not usable; call NewMem.
type Mem struct {
	mu         sync.Mutex
	items      []Message
	seen       map[uint64]bool
	closed     bool
	met        Metrics
	enqueuedAt map[uint64]time.Time
}

// NewMem returns an empty in-memory stable queue.
func NewMem() *Mem {
	return &Mem{seen: make(map[uint64]bool)}
}

// SetMetrics installs instrumentation.  Call before concurrent use.
func (q *Mem) SetMetrics(m Metrics) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.met = m
	if m.DeliverSeconds != nil {
		q.enqueuedAt = make(map[uint64]time.Time)
	}
	m.Depth.Set(int64(len(q.items)))
}

// Enqueue implements Queue.
func (q *Mem) Enqueue(m Message) error { return q.EnqueueBatch([]Message{m}) }

// EnqueueBatch implements Queue.
func (q *Mem) EnqueueBatch(msgs []Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	fresh := 0
	var now time.Time // one clock read per batch keeps stamping cheap
	if q.enqueuedAt != nil {
		now = time.Now()
	}
	for _, m := range msgs {
		if q.seen[m.ID] {
			continue
		}
		q.seen[m.ID] = true
		q.items = append(q.items, m)
		fresh++
		if q.enqueuedAt != nil {
			q.enqueuedAt[m.ID] = now
		}
	}
	if fresh > 0 {
		q.met.Enqueued.Add(uint64(fresh))
		q.met.Depth.Set(int64(len(q.items)))
	}
	return nil
}

// Peek implements Queue.
func (q *Mem) Peek() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Message{}, false, ErrClosed
	}
	if len(q.items) == 0 {
		return Message{}, false, nil
	}
	return q.items[0], true, nil
}

// PeekN implements Queue.
func (q *Mem) PeekN(n int) ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if n > len(q.items) {
		n = len(q.items)
	}
	return append([]Message(nil), q.items[:n]...), nil
}

// Ack implements Queue.
func (q *Mem) Ack(id uint64) error { return q.AckBatch([]uint64{id}) }

// AckBatch implements Queue.
func (q *Mem) AckBatch(ids []uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	before := len(q.items)
	q.items = removeIDs(q.items, ids)
	if removed := before - len(q.items); removed > 0 {
		q.met.Acked.Add(uint64(removed))
		q.met.Depth.Set(int64(len(q.items)))
	}
	q.observeDeliveredLocked(ids)
	return nil
}

// observeDeliveredLocked records enqueue→ack latency for instrumented
// queues.  Caller holds q.mu.
func (q *Mem) observeDeliveredLocked(ids []uint64) {
	if q.enqueuedAt == nil {
		return
	}
	now := time.Now()
	for _, id := range ids {
		if t0, ok := q.enqueuedAt[id]; ok {
			q.met.DeliverSeconds.Observe(int64(now.Sub(t0)))
			delete(q.enqueuedAt, id)
		}
	}
}

// All implements Queue.
func (q *Mem) All() ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	return append([]Message(nil), q.items...), nil
}

// Len implements Queue.
func (q *Mem) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close implements Queue.
func (q *Mem) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	return nil
}

// removeIDs filters the listed IDs out of items, preserving order.
func removeIDs(items []Message, ids []uint64) []Message {
	drop := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	out := items[:0]
	for _, m := range items {
		if !drop[m.ID] {
			out = append(out, m)
		}
	}
	// Zero the tail so dropped payloads are not pinned by the backing
	// array.
	for i := len(out); i < len(items); i++ {
		items[i] = Message{}
	}
	return out
}

// record is one journal entry.
type record struct {
	Ack bool
	Msg Message // Msg.ID only for acks
	// Seen carries the retained dedup horizon across a compaction: the
	// IDs of recently acknowledged messages that must stay suppressed
	// even though their enqueue records were compacted away.
	Seen []uint64
}

// Options tunes a File queue.  The zero value gives sensible defaults.
type Options struct {
	// FlushWindow is how long a group-commit leader lingers for more
	// writers to stage records before issuing the shared fsync.  Zero
	// (the default) still group-commits — writers that arrive while a
	// flush is in progress share the next one — but adds no latency.
	FlushWindow time.Duration
	// CompactMinRecords is the journal record count below which
	// compaction never triggers.  Zero means the default (1024);
	// negative disables compaction.
	CompactMinRecords int
	// SeenRetention is how many recently acknowledged message IDs stay
	// in the dedup set across a compaction.  Zero means the default
	// (4096); negative retains none beyond the live messages.
	SeenRetention int
}

const (
	defaultCompactMinRecords = 1024
	defaultSeenRetention     = 4096
	compactSuffix            = ".compact"
)

// compaction crash points, settable only by tests to prove crash safety
// of each step.
const (
	crashNone           = iota
	crashAfterTempWrite // temp journal written and synced, before rename
	crashAfterRename    // renamed over the journal, before handle swap
)

// errSimulatedCrash marks a test-injected crash inside compaction.
var errSimulatedCrash = errors.New("queue: simulated crash")

// File is a journal-backed Queue.  Every Enqueue and Ack is appended to
// the journal as a length-prefixed gob record and flushed before
// returning; Open replays the journal to rebuild in-memory state, so a
// crash (simulated by Close or by simply abandoning the handle) loses
// nothing that was acknowledged to the caller.  A torn final record — the
// artifact of a crash mid-write — is detected by the length prefix and
// truncated away during replay; damage anywhere else surfaces as a
// *CorruptError.
//
// Concurrent writers group-commit: records are staged under the state
// lock and the first writer through the commit lock flushes every staged
// record with one write and one fsync.  The journal compacts itself once
// dead records dominate (see Options).
type File struct {
	path string
	opts Options

	mu      sync.Mutex
	f       *os.File
	items   []Message
	seen    map[uint64]bool
	acked   []uint64 // acked IDs in ack order; the prunable part of seen
	records int      // complete records in the journal (live + dead)
	closed  bool

	// Group commit: stage accumulates encoded records; waiters get the
	// result of the flush that covered their records.  commitMu is held
	// by the flush leader for the duration of write+fsync.
	commitMu sync.Mutex
	stage    []byte
	waiters  []chan error

	// syncs is the fsync counter Syncs() reports.  It starts as a
	// standalone counter and is replaced by the cluster registry's
	// child when the queue is instrumented (SetMetrics), so benchmarks
	// and the metrics endpoint read the same number.
	syncs      *metrics.Counter
	met        Metrics
	enqueuedAt map[uint64]time.Time

	crashPoint int // test-only compaction crash injection
}

// Open opens (creating if necessary) the journal at path and replays it,
// using default Options.
func Open(path string) (*File, error) { return OpenOptions(path, Options{}) }

// OpenOptions opens the journal at path with explicit tuning.
func OpenOptions(path string, opts Options) (*File, error) {
	if opts.CompactMinRecords == 0 {
		opts.CompactMinRecords = defaultCompactMinRecords
	}
	if opts.SeenRetention == 0 {
		opts.SeenRetention = defaultSeenRetention
	}
	if opts.SeenRetention < 0 {
		opts.SeenRetention = 0
	}
	// A crash between writing the compaction temp file and renaming it
	// leaves the temp behind; the journal itself is still authoritative.
	os.Remove(path + compactSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("queue: open journal: %w", err)
	}
	q := &File{path: path, opts: opts, f: f, seen: make(map[uint64]bool), syncs: metrics.NewCounter()}
	if err := q.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return q, nil
}

// SetMetrics installs instrumentation.  Call before concurrent use.
// When m.Syncs is set it takes over as the fsync counter, starting from
// zero (replay happens before instrumentation and issues no fsyncs, so
// nothing is lost).
func (q *File) SetMetrics(m Metrics) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.met = m
	if m.Syncs != nil {
		q.syncs = m.Syncs
	}
	if m.DeliverSeconds != nil {
		q.enqueuedAt = make(map[uint64]time.Time)
	}
	m.Depth.Set(int64(len(q.items)))
}

// replay rebuilds in-memory state from the journal.  A torn tail is
// truncated; mid-file corruption aborts with a *CorruptError.
func (q *File) replay() error {
	if _, err := q.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("queue: seek journal: %w", err)
	}
	br := bufio.NewReader(q.f)
	var good int64 // offset just past the last complete record
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			break // clean EOF, or a torn length prefix
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxRecordSize {
			// Length prefixes are written whole from real record sizes; a
			// complete prefix this large cannot be a torn write.
			return &CorruptError{Path: q.path, Offset: good,
				Reason: fmt.Sprintf("record length %d exceeds the %d-byte limit", n, maxRecordSize)}
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			break // torn body: the record never finished writing
		}
		var r record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&r); err != nil {
			// The record is complete on disk but does not parse: that is
			// damage, not a crash artifact.
			return &CorruptError{Path: q.path, Offset: good,
				Reason: fmt.Sprintf("undecodable record: %v", err)}
		}
		good += 4 + int64(n)
		q.records++
		switch {
		case len(r.Seen) > 0:
			for _, id := range r.Seen {
				if !q.seen[id] {
					q.seen[id] = true
					q.acked = append(q.acked, id)
				}
			}
		case r.Ack:
			for i, m := range q.items {
				if m.ID == r.Msg.ID {
					q.items = append(q.items[:i], q.items[i+1:]...)
					q.acked = append(q.acked, r.Msg.ID)
					break
				}
			}
		default:
			if !q.seen[r.Msg.ID] {
				q.seen[r.Msg.ID] = true
				q.items = append(q.items, r.Msg)
			}
		}
	}
	if err := q.f.Truncate(good); err != nil {
		return fmt.Errorf("queue: truncate torn journal tail: %w", err)
	}
	if _, err := q.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("queue: seek after replay: %w", err)
	}
	return nil
}

// encodeRecord appends one length-prefixed record to buf.
func encodeRecord(buf *bytes.Buffer, r record) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(r); err != nil {
		return fmt.Errorf("queue: encode journal record: %w", err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(body.Len()))
	buf.Write(lenBuf[:])
	buf.Write(body.Bytes())
	return nil
}

// stageLocked stages encoded records for the next group commit and
// returns the channel that will carry that flush's result.  Callers hold
// q.mu.
func (q *File) stageLocked(encoded []byte, recs int) chan error {
	q.stage = append(q.stage, encoded...)
	q.records += recs
	ch := make(chan error, 1)
	q.waiters = append(q.waiters, ch)
	return ch
}

// flushWait drives group commit until ch resolves.  The first caller
// through commitMu becomes the leader: it lingers for the flush window,
// then writes and fsyncs everything staged and wakes every waiter.
// Later callers find their result already delivered.
func (q *File) flushWait(ch chan error) error {
	q.commitMu.Lock()
	select {
	case err := <-ch:
		q.commitMu.Unlock()
		return err
	default:
	}
	if q.opts.FlushWindow > 0 {
		time.Sleep(q.opts.FlushWindow) //esrvet:ignore A8 group-commit leader lingers for the flush window on purpose; commitMu is the batching gate
	}
	q.mu.Lock()
	data, waiters := q.stage, q.waiters
	q.stage, q.waiters = nil, nil
	f, closed := q.f, q.closed
	q.mu.Unlock()
	var err error
	switch {
	case closed:
		err = ErrClosed
	default:
		if _, werr := f.Write(data); werr != nil {
			err = fmt.Errorf("queue: journal append: %w", werr)
		} else {
			t0 := time.Now()
			if serr := f.Sync(); serr != nil { //esrvet:ignore A8 the leader's one fsync commits the whole cohort; commitMu held by design (group commit)
				err = fmt.Errorf("queue: journal sync: %w", serr)
			} else {
				q.syncs.Inc()
				q.met.SyncSeconds.Observe(int64(time.Since(t0)))
			}
		}
	}
	for _, w := range waiters {
		w <- err
	}
	q.commitMu.Unlock()
	// Our channel was staged before we took commitMu, so the loop above
	// necessarily resolved it with err.
	return err
}

// Syncs implements Syncer.  When the queue is instrumented this is a
// thin read of the registry's counter, so benchmarks and the metrics
// endpoint agree.
func (q *File) Syncs() uint64 { return q.syncs.Value() }

// Enqueue implements Queue.
func (q *File) Enqueue(m Message) error { return q.EnqueueBatch([]Message{m}) }

// EnqueueBatch implements Queue.  The whole batch is journaled under a
// single flush (shared with any concurrent writers).
func (q *File) EnqueueBatch(msgs []Message) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	fresh := make([]Message, 0, len(msgs))
	var buf bytes.Buffer
	var now time.Time // one clock read per batch keeps stamping cheap
	if q.enqueuedAt != nil {
		now = time.Now()
	}
	for _, m := range msgs {
		if q.seen[m.ID] {
			continue
		}
		if err := encodeRecord(&buf, record{Msg: m}); err != nil {
			q.mu.Unlock()
			return err
		}
		q.seen[m.ID] = true
		fresh = append(fresh, m)
		if q.enqueuedAt != nil {
			q.enqueuedAt[m.ID] = now
		}
	}
	if len(fresh) == 0 {
		q.mu.Unlock()
		return nil
	}
	ch := q.stageLocked(buf.Bytes(), len(fresh))
	q.mu.Unlock()
	if err := q.flushWait(ch); err != nil {
		return err
	}
	q.mu.Lock()
	q.items = append(q.items, fresh...)
	q.met.Enqueued.Add(uint64(len(fresh)))
	q.met.Depth.Set(int64(len(q.items)))
	q.mu.Unlock()
	return nil
}

// Peek implements Queue.
func (q *File) Peek() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Message{}, false, ErrClosed
	}
	if len(q.items) == 0 {
		return Message{}, false, nil
	}
	return q.items[0], true, nil
}

// PeekN implements Queue.
func (q *File) PeekN(n int) ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if n > len(q.items) {
		n = len(q.items)
	}
	return append([]Message(nil), q.items[:n]...), nil
}

// Ack implements Queue.
func (q *File) Ack(id uint64) error { return q.AckBatch([]uint64{id}) }

// AckBatch implements Queue.  Every listed message that is present is
// removed and its ack journaled under a single flush.  The batch may
// trigger a compaction once dead records dominate the journal.
func (q *File) AckBatch(ids []uint64) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	present := make(map[uint64]bool, len(q.items))
	for _, m := range q.items {
		present[m.ID] = true
	}
	var buf bytes.Buffer
	found := ids[:0:0]
	for _, id := range ids {
		if !present[id] {
			continue
		}
		if err := encodeRecord(&buf, record{Ack: true, Msg: Message{ID: id}}); err != nil {
			q.mu.Unlock()
			return err
		}
		found = append(found, id)
	}
	if len(found) == 0 {
		q.mu.Unlock()
		return nil
	}
	q.items = removeIDs(q.items, found)
	q.acked = append(q.acked, found...)
	q.met.Acked.Add(uint64(len(found)))
	q.met.Depth.Set(int64(len(q.items)))
	q.observeDeliveredLocked(found)
	ch := q.stageLocked(buf.Bytes(), len(found))
	q.mu.Unlock()
	if err := q.flushWait(ch); err != nil {
		return err
	}
	q.maybeCompact()
	return nil
}

// observeDeliveredLocked records enqueue→ack latency for instrumented
// queues.  Caller holds q.mu.
func (q *File) observeDeliveredLocked(ids []uint64) {
	if q.enqueuedAt == nil {
		return
	}
	now := time.Now()
	for _, id := range ids {
		if t0, ok := q.enqueuedAt[id]; ok {
			q.met.DeliverSeconds.Observe(int64(now.Sub(t0)))
			delete(q.enqueuedAt, id)
		}
	}
}

// All implements Queue.
func (q *File) All() ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	return append([]Message(nil), q.items...), nil
}

// Len implements Queue.
func (q *File) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close implements Queue.  It waits for any in-flight group commit, so
// records whose Enqueue/Ack already returned are on disk.
func (q *File) Close() error {
	q.commitMu.Lock()
	defer q.commitMu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	// Anything still staged but never flushed was never acknowledged to
	// its writer; fail those writers rather than leaving them blocked.
	for _, w := range q.waiters {
		w <- ErrClosed
	}
	q.stage, q.waiters = nil, nil
	return q.f.Close()
}

// maybeCompact compacts the journal when it has grown past the
// configured floor and dead (acknowledged) records outnumber live
// messages.  Compaction failures are deliberately swallowed: the journal
// stays valid as-is and a later ack retries.
func (q *File) maybeCompact() {
	q.mu.Lock()
	need := q.compactNeededLocked()
	q.mu.Unlock()
	if !need {
		return
	}
	q.commitMu.Lock()
	defer q.commitMu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	// Re-check under both locks; skip if another writer staged records
	// in the meantime (the next ack will retrigger).
	if len(q.stage) > 0 || !q.compactNeededLocked() {
		return
	}
	_ = q.compactLocked() //esrvet:ignore A8 compaction rewrites and fsyncs the journal under commitMu so no commit interleaves
}

func (q *File) compactNeededLocked() bool {
	if q.closed || q.opts.CompactMinRecords < 0 {
		return false
	}
	return q.records >= q.opts.CompactMinRecords && q.records > 2*len(q.items)
}

// compactLocked rewrites the journal to just its live state: one Seen
// record carrying the retained dedup horizon, then every unacknowledged
// message.  The rewrite goes to a temporary file that atomically replaces
// the journal, so a crash at any point leaves a complete journal — the
// old one before the rename, the new one after.  Callers hold both
// commitMu (no flush in flight) and mu.
func (q *File) compactLocked() error {
	// Prune the dedup horizon: acked IDs beyond the retention window
	// stop being remembered.  Live messages always stay in seen via
	// their rewritten enqueue records.
	if over := len(q.acked) - q.opts.SeenRetention; over > 0 {
		for _, id := range q.acked[:over] {
			delete(q.seen, id)
		}
		q.acked = append([]uint64(nil), q.acked[over:]...)
	}
	var buf bytes.Buffer
	recs := 0
	if len(q.acked) > 0 {
		if err := encodeRecord(&buf, record{Seen: append([]uint64(nil), q.acked...)}); err != nil {
			return err
		}
		recs++
	}
	for _, m := range q.items {
		if err := encodeRecord(&buf, record{Msg: m}); err != nil {
			return err
		}
		recs++
	}
	tmpPath := q.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("queue: create compaction file: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("queue: write compaction file: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("queue: sync compaction file: %w", err)
	}
	q.syncs.Inc()
	q.met.Compactions.Inc()
	if q.crashPoint == crashAfterTempWrite {
		tmp.Close()
		return errSimulatedCrash
	}
	if err := os.Rename(tmpPath, q.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("queue: swap compacted journal: %w", err)
	}
	if err := syncDir(filepath.Dir(q.path)); err != nil {
		q.met.DirSyncErrors.Inc()
	}
	if q.crashPoint == crashAfterRename {
		tmp.Close()
		return errSimulatedCrash
	}
	// tmp's descriptor now refers to the renamed journal, positioned at
	// its end; it replaces the stale handle.
	q.f.Close()
	q.f = tmp
	q.records = recs
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.  Best
// effort — some filesystems refuse directory fsync — but the failure is
// reported so callers can count it instead of silently weakening the
// rename's durability.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	d.Close()
	return serr
}

// Delivery pumps messages from a stable queue through an unreliable send
// function, in FIFO order, retrying until each message is acknowledged.
// This is the "persistently retry message delivery until successful"
// contract of §2.2.
//
// With a window above one, each round drains up to that many messages:
// they are pushed through the batch send function (or the single-message
// send, in order) and every delivered message is acknowledged with one
// AckBatch — a single journal flush — instead of one Peek/send/Ack cycle
// per message.
type Delivery struct {
	q         Queue
	send      func(Message) error
	sendBatch func([]Message) error
	window    int
	backoff   time.Duration
	maxWait   time.Duration

	mu      sync.Mutex
	kick    chan struct{}
	done    chan struct{}
	stopped bool
	wg      sync.WaitGroup

	met DeliveryMetrics

	// ring, when set, receives one flush span per successful delivery
	// round (send through batched acknowledgement), attributed to site
	// with the peer in the detail — the propagation leg of a timeline.
	ring *trace.Ring
	site int
	peer int
}

// DeliveryMetrics instruments a delivery agent.  All fields optional.
type DeliveryMetrics struct {
	// BatchSize observes the number of messages delivered per round.
	BatchSize *metrics.Histogram
	// Retries counts failed send rounds (each triggers a backoff).
	Retries *metrics.Counter
	// BackoffResets counts kicks that cut a backoff short — a fresh
	// enqueue or a partition heal arriving while the pump was waiting
	// out a failure.
	BackoffResets *metrics.Counter
}

// SetMetrics installs instrumentation.  Call before Start.
func (d *Delivery) SetMetrics(m DeliveryMetrics) { d.met = m }

// SetTrace installs the trace ring: each successful delivery round
// records a flush span attributed to the sending site (peer in the
// detail).  Call before Start.
func (d *Delivery) SetTrace(r *trace.Ring, site, peer int) {
	d.ring = r
	d.site = site
	d.peer = peer
}

// NewDelivery creates a delivery agent draining q through send.  backoff
// is the initial retry delay after a failed send; it doubles up to
// maxWait.  Call Start to begin pumping and Stop to shut down.
func NewDelivery(q Queue, send func(Message) error, backoff, maxWait time.Duration) *Delivery {
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	if maxWait < backoff {
		maxWait = backoff
	}
	return &Delivery{
		q: q, send: send, backoff: backoff, maxWait: maxWait,
		window: 1,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// SetWindow sets the in-flight window: the maximum number of messages
// drained per round.  Values below one mean one.  Call before Start.
func (d *Delivery) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	d.window = n
}

// SetBatchSend installs a batched send used whenever a round drains more
// than one message; the whole batch either delivers or fails together.
// Call before Start.
func (d *Delivery) SetBatchSend(f func([]Message) error) { d.sendBatch = f }

// Start launches the pump goroutine.
func (d *Delivery) Start() {
	d.wg.Add(1)
	go d.run()
}

// Kick wakes the pump immediately, typically after an Enqueue or a
// partition heal.
func (d *Delivery) Kick() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// Stop shuts the pump down and waits for it to exit.
func (d *Delivery) Stop() {
	d.mu.Lock()
	if !d.stopped {
		d.stopped = true
		close(d.done)
	}
	d.mu.Unlock()
	d.wg.Wait()
}

func (d *Delivery) run() {
	defer d.wg.Done()
	wait := d.backoff
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		batch, err := d.q.PeekN(d.window)
		if err != nil {
			return // queue closed
		}
		if len(batch) > 0 {
			var t0 time.Time
			if d.ring != nil {
				t0 = time.Now()
			}
			delivered, sendErr := d.sendRound(batch)
			if len(delivered) > 0 {
				if err := d.q.AckBatch(delivered); err != nil {
					return
				}
				d.met.BatchSize.Observe(int64(len(delivered)))
				if d.ring != nil {
					d.ring.RecordSpan(trace.Flush, d.site, "", 0, t0,
						fmt.Sprintf("to=%d n=%d", d.peer, len(delivered)))
				}
				wait = d.backoff
			}
			if sendErr == nil {
				continue
			}
			d.met.Retries.Inc()
			// Send failed: back off, then retry from the head.  A kick
			// (fresh enqueue or partition heal) retries immediately and
			// resets the backoff — the stale penalty belongs to the old
			// link state, not the healed one.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-d.done:
				return
			case <-timer.C:
				wait *= 2
				if wait > d.maxWait {
					wait = d.maxWait
				}
			case <-d.kick:
				wait = d.backoff
				d.met.BackoffResets.Inc()
			}
			continue
		}
		// Queue empty: sleep until kicked or a poll interval passes.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d.backoff)
		select {
		case <-d.done:
			return
		case <-d.kick:
		case <-timer.C:
		}
	}
}

// sendRound pushes one batch through the transport and reports which
// message IDs were delivered, plus the first error.  With a batch send
// installed, multi-message rounds deliver or fail as one frame;
// otherwise messages go out one at a time, stopping at the first
// failure so FIFO order holds.
func (d *Delivery) sendRound(batch []Message) ([]uint64, error) {
	if d.sendBatch != nil && len(batch) > 1 {
		if err := d.sendBatch(batch); err != nil {
			return nil, err
		}
		ids := make([]uint64, len(batch))
		for i, m := range batch {
			ids[i] = m.ID
		}
		return ids, nil
	}
	var ids []uint64
	for _, m := range batch {
		if err := d.send(m); err != nil {
			return ids, err
		}
		ids = append(ids, m.ID)
	}
	return ids, nil
}
