// Package queue implements the stable queues the paper assumes for MSet
// propagation (§2.2): persistent FIFO queues that survive crashes and
// support at-least-once delivery with duplicate suppression.
//
// "We assume the system maintains the unprocessed MSets in some stable
// storage, such as stable queues [5] and persistent pipes [17]."
//
// Two implementations are provided: Mem, an in-memory queue for tests and
// simulations that do not model crashes, and File, a journal-backed queue
// whose contents survive Close/reopen (the crash model used by the failure
// injection tests).  A Delivery agent drains a queue through an unreliable
// send function, retrying until each message is acknowledged.
package queue

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Message is one element of a stable queue.  IDs must be unique per queue;
// enqueueing an ID the queue has already seen (even if since acknowledged)
// is a no-op, which gives producers idempotent retry.
type Message struct {
	// ID uniquely identifies the message within its queue.
	ID uint64
	// Payload is the opaque message body (typically a gob-encoded MSet).
	Payload []byte
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("queue: closed")

// Queue is a stable FIFO with acknowledge-to-remove semantics.
// Implementations must be safe for concurrent use.
type Queue interface {
	// Enqueue appends the message unless its ID has been seen before.
	Enqueue(Message) error
	// Peek returns the oldest unacknowledged message without removing it.
	// ok is false when the queue is empty.
	Peek() (m Message, ok bool, err error)
	// Ack removes the message with the given ID.  Acking an unknown or
	// already-acked ID is a no-op.
	Ack(id uint64) error
	// All returns a snapshot of every unacknowledged message in FIFO
	// order.  Consumers that must process messages out of arrival order
	// (ORDUP's hold-back delivery) scan All instead of Peek.
	All() ([]Message, error)
	// Len reports the number of unacknowledged messages.
	Len() int
	// Close releases resources.  A File queue can be reopened afterwards.
	Close() error
}

// Mem is an in-memory Queue.  The zero value is not usable; call NewMem.
type Mem struct {
	mu     sync.Mutex
	items  []Message
	seen   map[uint64]bool
	closed bool
}

// NewMem returns an empty in-memory stable queue.
func NewMem() *Mem {
	return &Mem{seen: make(map[uint64]bool)}
}

// Enqueue implements Queue.
func (q *Mem) Enqueue(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.seen[m.ID] {
		return nil
	}
	q.seen[m.ID] = true
	q.items = append(q.items, m)
	return nil
}

// Peek implements Queue.
func (q *Mem) Peek() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Message{}, false, ErrClosed
	}
	if len(q.items) == 0 {
		return Message{}, false, nil
	}
	return q.items[0], true, nil
}

// Ack implements Queue.
func (q *Mem) Ack(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	for i, m := range q.items {
		if m.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return nil
		}
	}
	return nil
}

// All implements Queue.
func (q *Mem) All() ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	return append([]Message(nil), q.items...), nil
}

// Len implements Queue.
func (q *Mem) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close implements Queue.
func (q *Mem) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	return nil
}

// record is one journal entry.
type record struct {
	Ack bool
	Msg Message // Msg.ID only for acks
}

// File is a journal-backed Queue.  Every Enqueue and Ack is appended to
// the journal as a length-prefixed gob record and flushed before
// returning; Open replays the journal to rebuild in-memory state, so a
// crash (simulated by Close or by simply abandoning the handle) loses
// nothing that was acknowledged to the caller.  A torn final record — the
// artifact of a crash mid-write — is detected by the length prefix and
// truncated away during replay.
type File struct {
	mu     sync.Mutex
	f      *os.File
	items  []Message
	seen   map[uint64]bool
	closed bool
}

// Open opens (creating if necessary) the journal at path and replays it.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("queue: open journal: %w", err)
	}
	q := &File{f: f, seen: make(map[uint64]bool)}
	if err := q.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return q, nil
}

func (q *File) replay() error {
	if _, err := q.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("queue: seek journal: %w", err)
	}
	br := bufio.NewReader(q.f)
	var good int64 // offset just past the last complete record
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			break // EOF or torn length prefix
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			break // torn body
		}
		var r record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&r); err != nil {
			break // corrupt record
		}
		good += 4 + int64(n)
		if r.Ack {
			for i, m := range q.items {
				if m.ID == r.Msg.ID {
					q.items = append(q.items[:i], q.items[i+1:]...)
					break
				}
			}
		} else if !q.seen[r.Msg.ID] {
			q.seen[r.Msg.ID] = true
			q.items = append(q.items, r.Msg)
		}
	}
	if err := q.f.Truncate(good); err != nil {
		return fmt.Errorf("queue: truncate torn journal tail: %w", err)
	}
	if _, err := q.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("queue: seek after replay: %w", err)
	}
	return nil
}

func (q *File) append(r record) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(r); err != nil {
		return fmt.Errorf("queue: encode journal record: %w", err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(body.Len()))
	if _, err := q.f.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("queue: journal append: %w", err)
	}
	if _, err := q.f.Write(body.Bytes()); err != nil {
		return fmt.Errorf("queue: journal append: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("queue: journal sync: %w", err)
	}
	return nil
}

// Enqueue implements Queue.
func (q *File) Enqueue(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.seen[m.ID] {
		return nil
	}
	if err := q.append(record{Msg: m}); err != nil {
		return err
	}
	q.seen[m.ID] = true
	q.items = append(q.items, m)
	return nil
}

// Peek implements Queue.
func (q *File) Peek() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Message{}, false, ErrClosed
	}
	if len(q.items) == 0 {
		return Message{}, false, nil
	}
	return q.items[0], true, nil
}

// Ack implements Queue.
func (q *File) Ack(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	found := false
	for i, m := range q.items {
		if m.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	return q.append(record{Ack: true, Msg: Message{ID: id}})
}

// All implements Queue.
func (q *File) All() ([]Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	return append([]Message(nil), q.items...), nil
}

// Len implements Queue.
func (q *File) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close implements Queue.
func (q *File) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	return q.f.Close()
}

// Delivery pumps messages from a stable queue through an unreliable send
// function, in FIFO order, retrying each message until send succeeds, then
// acknowledging it.  This is the "persistently retry message delivery
// until successful" contract of §2.2.
type Delivery struct {
	q       Queue
	send    func(Message) error
	backoff time.Duration
	maxWait time.Duration

	mu      sync.Mutex
	kick    chan struct{}
	done    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// NewDelivery creates a delivery agent draining q through send.  backoff
// is the initial retry delay after a failed send; it doubles up to
// maxWait.  Call Start to begin pumping and Stop to shut down.
func NewDelivery(q Queue, send func(Message) error, backoff, maxWait time.Duration) *Delivery {
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	if maxWait < backoff {
		maxWait = backoff
	}
	return &Delivery{
		q: q, send: send, backoff: backoff, maxWait: maxWait,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// Start launches the pump goroutine.
func (d *Delivery) Start() {
	d.wg.Add(1)
	go d.run()
}

// Kick wakes the pump immediately, typically after an Enqueue or a
// partition heal.
func (d *Delivery) Kick() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// Stop shuts the pump down and waits for it to exit.
func (d *Delivery) Stop() {
	d.mu.Lock()
	if !d.stopped {
		d.stopped = true
		close(d.done)
	}
	d.mu.Unlock()
	d.wg.Wait()
}

func (d *Delivery) run() {
	defer d.wg.Done()
	wait := d.backoff
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		m, ok, err := d.q.Peek()
		if err != nil {
			return // queue closed
		}
		if ok {
			if err := d.send(m); err == nil {
				if err := d.q.Ack(m.ID); err != nil {
					return
				}
				wait = d.backoff
				continue
			}
			// send failed: back off, then retry the same head message.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-d.done:
				return
			case <-timer.C:
			case <-d.kick:
			}
			wait *= 2
			if wait > d.maxWait {
				wait = d.maxWait
			}
			continue
		}
		// Queue empty: sleep until kicked or a poll interval passes.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d.backoff)
		select {
		case <-d.done:
			return
		case <-d.kick:
		case <-timer.C:
		}
	}
}
