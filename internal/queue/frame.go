// Chunked-transfer framing: the fixed little-endian frames state
// transfer uses to move a large blob (a site snapshot) over the
// transport's request/response calls in bounded pieces.  The codec
// lives beside the stable-queue journal framing because both are the
// same discipline — self-describing fixed headers, no allocation
// surprises, identical over every transport.
//
// A transfer is a sequence of calls:
//
//	request:  [handle u64][offset u64]
//	response: [handle u64][total u64][offset u64][chunk bytes]
//
// The first request carries handle 0; the server pins an encoding of
// the blob, assigns a handle, and every later request addresses that
// pinned encoding, so chunks are consistent even while the underlying
// state keeps changing.  The server releases the handle after serving
// the final chunk.
package queue

import "fmt"

// chunkReqLen is the encoded request size.
const chunkReqLen = 16

// chunkHdrLen is the response header size preceding the chunk bytes.
const chunkHdrLen = 24

// EncodeChunkReq builds a chunk request frame.
func EncodeChunkReq(handle, offset uint64) []byte {
	b := make([]byte, chunkReqLen)
	putLE(b[0:], handle)
	putLE(b[8:], offset)
	return b
}

// DecodeChunkReq parses a chunk request frame.
func DecodeChunkReq(b []byte) (handle, offset uint64, err error) {
	if len(b) != chunkReqLen {
		return 0, 0, fmt.Errorf("queue: chunk request length %d, want %d", len(b), chunkReqLen)
	}
	return getLE(b[0:]), getLE(b[8:]), nil
}

// EncodeChunk builds a chunk response frame.
func EncodeChunk(handle, total, offset uint64, data []byte) []byte {
	b := make([]byte, chunkHdrLen+len(data))
	putLE(b[0:], handle)
	putLE(b[8:], total)
	putLE(b[16:], offset)
	copy(b[chunkHdrLen:], data)
	return b
}

// DecodeChunk parses a chunk response frame.  The returned data aliases
// b.
func DecodeChunk(b []byte) (handle, total, offset uint64, data []byte, err error) {
	if len(b) < chunkHdrLen {
		return 0, 0, 0, nil, fmt.Errorf("queue: chunk frame length %d, want at least %d", len(b), chunkHdrLen)
	}
	return getLE(b[0:]), getLE(b[8:]), getLE(b[16:]), b[chunkHdrLen:], nil
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getLE(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
