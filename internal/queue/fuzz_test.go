package queue

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecovery feeds arbitrary bytes to the journal reader: Open
// must never panic, must always produce a usable queue (recovering any
// intact record prefix), and the recovered queue must accept appends
// that survive a further reopen.
func FuzzJournalRecovery(f *testing.F) {
	// Seed with a real journal prefix plus corruptions.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.journal")
	q, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	q.Enqueue(Message{ID: 1, Payload: []byte("alpha")})
	q.Enqueue(Message{ID: 2, Payload: []byte("beta")})
	q.Ack(1)
	q.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add(append(append([]byte{}, seed...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, journal []byte) {
		path := filepath.Join(t.TempDir(), "q.journal")
		if err := os.WriteFile(path, journal, 0o600); err != nil {
			t.Fatal(err)
		}
		q, err := Open(path)
		if err != nil {
			t.Fatalf("Open on arbitrary bytes must recover, got %v", err)
		}
		// The recovered queue must be fully usable.
		if err := q.Enqueue(Message{ID: 1 << 60, Payload: []byte("post-recovery")}); err != nil {
			t.Fatalf("Enqueue after recovery: %v", err)
		}
		n := q.Len()
		if n < 1 {
			t.Fatalf("Len = %d after post-recovery enqueue", n)
		}
		q.Close()
		// And its state must survive another reopen.
		q2, err := Open(path)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer q2.Close()
		if q2.Len() != n {
			t.Fatalf("reopen lost state: %d != %d", q2.Len(), n)
		}
	})
}
