package queue

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecovery feeds arbitrary bytes to the journal reader: Open
// must never panic, and must either produce a usable queue (recovering
// any intact record prefix, truncating a torn tail) or reject the file
// with a diagnosable *CorruptError — never any other failure.  When it
// recovers, the queue must accept appends that survive a further reopen.
func FuzzJournalRecovery(f *testing.F) {
	// Seed with real journal prefixes plus corruptions.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.journal")
	q, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	q.Enqueue(Message{ID: 1, Payload: []byte("alpha")})
	q.Enqueue(Message{ID: 2, Payload: []byte("beta")})
	q.Ack(1)
	q.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add(append(append([]byte{}, seed...), 0xde, 0xad))

	// Batch-written journal: EnqueueBatch and AckBatch records.
	batchPath := filepath.Join(dir, "batch.journal")
	qb, err := Open(batchPath)
	if err != nil {
		f.Fatal(err)
	}
	qb.EnqueueBatch([]Message{
		{ID: 10, Payload: []byte("b0")},
		{ID: 11, Payload: []byte("b1")},
		{ID: 12, Payload: []byte("b2")},
	})
	qb.AckBatch([]uint64{10, 12})
	qb.Close()
	batch, err := os.ReadFile(batchPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	f.Add(batch[:len(batch)-5])

	// Compacted journal: a Seen record followed by live messages.
	compactPath := filepath.Join(dir, "compact.journal")
	qc, err := OpenOptions(compactPath, Options{CompactMinRecords: 4, SeenRetention: 2})
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		qc.Enqueue(Message{ID: i, Payload: []byte{byte(i)}})
	}
	qc.AckBatch([]uint64{1, 2, 3, 4, 5})
	qc.Close()
	compact, err := os.ReadFile(compactPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(compact)
	f.Add(compact[:len(compact)/2])

	f.Fuzz(func(t *testing.T, journal []byte) {
		path := filepath.Join(t.TempDir(), "q.journal")
		if err := os.WriteFile(path, journal, 0o600); err != nil {
			t.Fatal(err)
		}
		q, err := Open(path)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Open on arbitrary bytes must recover or report corruption, got %v", err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(journal)) {
				t.Fatalf("corruption offset %d out of range [0,%d]", ce.Offset, len(journal))
			}
			return
		}
		// The recovered queue must be fully usable.
		if err := q.Enqueue(Message{ID: 1 << 60, Payload: []byte("post-recovery")}); err != nil {
			t.Fatalf("Enqueue after recovery: %v", err)
		}
		n := q.Len()
		if n < 1 {
			t.Fatalf("Len = %d after post-recovery enqueue", n)
		}
		q.Close()
		// And its state must survive another reopen.
		q2, err := Open(path)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer q2.Close()
		if q2.Len() != n {
			t.Fatalf("reopen lost state: %d != %d", q2.Len(), n)
		}
	})
}
