package queue

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkPipeline measures the enqueue→deliver→ack pipeline of the
// file-backed queue at several batch sizes.  It reports fsyncs/op so the
// group-commit win is visible next to the throughput number; these are
// the figures recorded in BENCH_pipeline.json by `make bench`.
func BenchmarkPipeline(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			q, err := Open(filepath.Join(b.TempDir(), "q.journal"))
			if err != nil {
				b.Fatal(err)
			}
			defer q.Close()
			msgs := make([]Message, batch)
			b.ResetTimer()
			var id uint64
			for i := 0; i < b.N; i += batch {
				for j := range msgs {
					id++
					msgs[j] = Message{ID: id, Payload: []byte("0123456789abcdef")}
				}
				if err := q.EnqueueBatch(msgs); err != nil {
					b.Fatal(err)
				}
				got, err := q.PeekN(batch)
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]uint64, len(got))
				for j, m := range got {
					ids[j] = m.ID
				}
				if err := q.AckBatch(ids); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(q.Syncs())/float64(b.N), "fsyncs/op")
		})
	}
}

// BenchmarkGroupCommitContention measures concurrent single-message
// enqueues with group commit coalescing the fsyncs across goroutines.
func BenchmarkGroupCommitContention(b *testing.B) {
	q, err := Open(filepath.Join(b.TempDir(), "q.journal"))
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	var id uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// ID collisions across goroutines are fine for throughput
			// purposes; dedup work is part of the measured path.
			id++
			q.Enqueue(Message{ID: id, Payload: []byte("0123456789abcdef")})
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(q.Syncs())/float64(b.N), "fsyncs/op")
}
