package queue

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openSmall opens a File queue with a low compaction floor so tests can
// trigger compaction with few records.
func openSmall(t *testing.T, path string, retention int) *File {
	t.Helper()
	q, err := OpenOptions(path, Options{CompactMinRecords: 8, SeenRetention: retention})
	if err != nil {
		t.Fatalf("OpenOptions: %v", err)
	}
	return q
}

func TestCompactionRewritesLiveTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q := openSmall(t, path, 100)
	for i := uint64(1); i <= 10; i++ {
		if err := q.Enqueue(Message{ID: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	before, _ := os.Stat(path)
	var acks []uint64
	for i := uint64(1); i <= 8; i++ {
		acks = append(acks, i)
	}
	if err := q.AckBatch(acks); err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	// 10 enqueues + 8 acks = 18 records ≥ 8, live 2 < 9 dead: compacted.
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("journal did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	if q.records != 3 { // Seen + 2 live
		t.Errorf("records = %d after compaction, want 3", q.records)
	}
	// The queue keeps working and the compacted journal replays cleanly.
	if err := q.Enqueue(Message{ID: 11}); err != nil {
		t.Fatalf("Enqueue after compaction: %v", err)
	}
	q.Close()
	q2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen compacted journal: %v", err)
	}
	defer q2.Close()
	all, _ := q2.All()
	if len(all) != 3 || all[0].ID != 9 || all[1].ID != 10 || all[2].ID != 11 {
		t.Fatalf("recovered messages = %v, want IDs [9 10 11]", all)
	}
	// Dedup for recently acked IDs survives the compaction.
	q2.Enqueue(Message{ID: 5})
	if q2.Len() != 3 {
		t.Errorf("re-enqueue of retained acked ID was accepted")
	}
}

// TestSyncDirReportsErrors pins the bugfix contract: directory fsync
// stays best effort, but failures are reported to the caller (which
// counts them) instead of being swallowed.
func TestSyncDirReportsErrors(t *testing.T) {
	if err := syncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("syncDir on a missing directory reported success")
	}
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir on a real directory: %v", err)
	}
}

func TestCompactionPrunesSeenPastRetention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q := openSmall(t, path, 2) // remember only the last 2 acked IDs
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(Message{ID: i})
	}
	if err := q.AckBatch([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	if got := len(q.seen); got != 4 { // 2 live + 2 retained acked
		t.Errorf("seen size = %d after compaction, want 4", got)
	}
	// IDs inside the retention horizon stay suppressed…
	q.Enqueue(Message{ID: 8})
	if q.Len() != 2 {
		t.Errorf("ID inside retention horizon re-accepted")
	}
	// …while IDs beyond it are forgotten (an at-least-once redelivery,
	// not a correctness loss: the consumer-side dedup still holds).
	q.Enqueue(Message{ID: 1})
	if q.Len() != 3 {
		t.Errorf("ID beyond retention horizon still suppressed; seen map would leak")
	}
	q.Close()
}

func TestCompactionBoundsJournalAndMemoryUnderChurn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.journal")
	q, err := OpenOptions(path, Options{CompactMinRecords: 64, SeenRetention: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := uint64(1); i <= 2000; i++ {
		if err := q.Enqueue(Message{ID: i, Payload: []byte("payload")}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		if err := q.Ack(i); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if got := len(q.seen); got > 128 {
		t.Errorf("seen map grew to %d entries under churn; retention not applied", got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 64*1024 {
		t.Errorf("journal is %d bytes after 2000 acked messages; compaction not bounding it", st.Size())
	}
}

// TestCompactionCrashPoints proves compaction is crash-safe at each
// step: a crash after the temp-file write (before rename) and a crash
// after the rename (before the handle swap) both leave a journal that
// replays to exactly the live messages, with no loss and no duplicates
// beyond at-least-once.
func TestCompactionCrashPoints(t *testing.T) {
	for _, point := range []int{crashAfterTempWrite, crashAfterRename} {
		t.Run(fmt.Sprintf("point%d", point), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "q.journal")
			q := openSmall(t, path, 100)
			for i := uint64(1); i <= 10; i++ {
				q.Enqueue(Message{ID: i, Payload: []byte{byte(i)}})
			}
			q.crashPoint = point
			// Drive the ack batch; compaction triggers and "crashes".
			if err := q.AckBatch([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
				t.Fatalf("AckBatch: %v", err)
			}
			// The crash abandoned the handle mid-compaction.  Reopen the
			// path as a recovery would.
			q.f.Close()

			q2, err := Open(path)
			if err != nil {
				t.Fatalf("reopen after crash point %d: %v", point, err)
			}
			defer q2.Close()
			all, _ := q2.All()
			if len(all) != 2 || all[0].ID != 9 || all[1].ID != 10 {
				t.Fatalf("crash point %d: recovered %v, want IDs [9 10]", point, all)
			}
			// Acked messages must not resurrect (dedup horizon intact in
			// both the old and the compacted journal).
			q2.Enqueue(Message{ID: 3})
			if q2.Len() != 2 {
				t.Errorf("crash point %d: acked message resurrected after recovery", point)
			}
			// And the stale temp file, if any, must be gone.
			if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
				t.Errorf("crash point %d: stale compaction temp file left behind", point)
			}
		})
	}
}

func TestReplayDistinguishesTornTailFromCorruption(t *testing.T) {
	dir := t.TempDir()

	t.Run("torn tail truncates", func(t *testing.T) {
		path := filepath.Join(dir, "torn.journal")
		q, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		q.Enqueue(Message{ID: 1, Payload: []byte("first")})
		q.Enqueue(Message{ID: 2, Payload: []byte("second")})
		q.Close()
		st, _ := os.Stat(path)
		os.Truncate(path, st.Size()-3)
		q2, err := Open(path)
		if err != nil {
			t.Fatalf("torn tail must recover, got %v", err)
		}
		defer q2.Close()
		if q2.Len() != 1 {
			t.Errorf("Len = %d after torn tail, want 1", q2.Len())
		}
	})

	t.Run("mid-file corruption errors with offset", func(t *testing.T) {
		path := filepath.Join(dir, "corrupt.journal")
		q, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		q.Enqueue(Message{ID: 1, Payload: []byte("first")})
		q.Enqueue(Message{ID: 2, Payload: []byte("second")})
		q.Close()
		// Overwrite the FIRST record's body with garbage, keeping its
		// length prefix: damage in the middle of the file, with a
		// complete, intact record after it.
		raw, _ := os.ReadFile(path)
		n1 := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
		for i := 4; i < 4+n1; i++ {
			raw[i] = 0xff
		}
		if err := os.WriteFile(path, raw, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err = Open(path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("mid-file corruption must return *CorruptError, got %v", err)
		}
		if ce.Offset != 0 {
			t.Errorf("corruption offset = %d, want 0 (first record)", ce.Offset)
		}
		if ce.Path != path {
			t.Errorf("corruption path = %q, want %q", ce.Path, path)
		}
	})

	t.Run("absurd length prefix errors", func(t *testing.T) {
		path := filepath.Join(dir, "length.journal")
		q, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		q.Enqueue(Message{ID: 1, Payload: []byte("first")})
		q.Close()
		st, _ := os.Stat(path)
		// Append a complete 4-byte prefix claiming a 4 GiB record.
		fh, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o600)
		fh.Write([]byte{0xff, 0xff, 0xff, 0xff})
		fh.Close()
		_, err = Open(path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("oversized length prefix must return *CorruptError, got %v", err)
		}
		if ce.Offset != st.Size() {
			t.Errorf("corruption offset = %d, want %d", ce.Offset, st.Size())
		}
	})
}
