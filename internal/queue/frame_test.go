package queue

import (
	"bytes"
	"testing"
)

func TestChunkReqRoundTrip(t *testing.T) {
	b := EncodeChunkReq(7, 1<<40)
	if len(b) != chunkReqLen {
		t.Fatalf("request length = %d, want %d", len(b), chunkReqLen)
	}
	handle, offset, err := DecodeChunkReq(b)
	if err != nil {
		t.Fatalf("DecodeChunkReq: %v", err)
	}
	if handle != 7 || offset != 1<<40 {
		t.Errorf("decoded (%d, %d), want (7, %d)", handle, offset, uint64(1)<<40)
	}
}

func TestChunkReqRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, chunkReqLen - 1, chunkReqLen + 1} {
		if _, _, err := DecodeChunkReq(make([]byte, n)); err == nil {
			t.Errorf("DecodeChunkReq accepted length %d", n)
		}
	}
}

func TestChunkRoundTrip(t *testing.T) {
	data := []byte("snapshot bytes")
	b := EncodeChunk(3, 100, 24, data)
	handle, total, offset, got, err := DecodeChunk(b)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if handle != 3 || total != 100 || offset != 24 || !bytes.Equal(got, data) {
		t.Errorf("decoded (%d, %d, %d, %q)", handle, total, offset, got)
	}
}

func TestChunkEmptyData(t *testing.T) {
	b := EncodeChunk(1, 0, 0, nil)
	if len(b) != chunkHdrLen {
		t.Fatalf("empty chunk length = %d, want %d", len(b), chunkHdrLen)
	}
	_, _, _, data, err := DecodeChunk(b)
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if len(data) != 0 {
		t.Errorf("data = %q, want empty", data)
	}
}

func TestChunkRejectsShortFrame(t *testing.T) {
	if _, _, _, _, err := DecodeChunk(make([]byte, chunkHdrLen-1)); err == nil {
		t.Error("DecodeChunk accepted a short frame")
	}
}
