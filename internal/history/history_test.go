package history

import (
	"math/rand"
	"testing"

	"esr/internal/op"
)

// ev builds an event in the paper's notation: r/w, ET id, object.
func ev(class Class, et uint64, kind op.Kind, object string) Event {
	o := op.Op{Kind: kind, Object: object, Arg: 1}
	return Event{ET: et, Class: class, Op: o}
}

// paperLog1 is the paper's example log (1):
//
//	R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)
//
// where ET1 and ET2 are update ETs and ET3 is a query ET.
func paperLog1() []Event {
	return []Event{
		ev(Update, 1, op.Read, "a"),
		ev(Update, 1, op.Write, "b"),
		ev(Update, 2, op.Write, "b"),
		ev(Query, 3, op.Read, "a"),
		ev(Update, 2, op.Write, "a"),
		ev(Query, 3, op.Read, "b"),
	}
}

// TestPaperExampleLog1 reproduces the paper's §2.1 worked example: the
// log is ε-serial but not SR, and Q3 overlaps U2.
func TestPaperExampleLog1(t *testing.T) {
	events := paperLog1()
	if IsSerializable(events) {
		t.Errorf("paper log (1) must NOT be serializable")
	}
	if !IsEpsilonSerial(events) {
		t.Errorf("paper log (1) must be epsilon-serial")
	}
	overlap := Overlap(events, 3)
	if len(overlap) != 1 || overlap[0] != 2 {
		t.Errorf("Overlap(Q3) = %v, want [2] (U2 writes a and b around Q3's reads)", overlap)
	}
}

func TestSerialOrderOfPaperUpdates(t *testing.T) {
	updates := DeleteQueries(paperLog1())
	order, ok := SerialOrder(updates)
	if !ok {
		t.Fatalf("update ETs of paper log (1) must be serializable")
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("SerialOrder = %v, want [1 2]", order)
	}
}

func TestConflicts(t *testing.T) {
	tests := []struct {
		a, b Event
		want bool
	}{
		{ev(Update, 1, op.Write, "x"), ev(Update, 2, op.Write, "x"), true},
		{ev(Update, 1, op.Write, "x"), ev(Update, 2, op.Read, "x"), true},
		{ev(Update, 1, op.Read, "x"), ev(Update, 2, op.Read, "x"), false},
		{ev(Update, 1, op.Write, "x"), ev(Update, 1, op.Write, "x"), false}, // same ET
		{ev(Update, 1, op.Write, "x"), ev(Update, 2, op.Write, "y"), false}, // diff object
		{ev(Query, 3, op.Read, "x"), ev(Update, 1, op.Write, "x"), true},
	}
	for _, tt := range tests {
		if got := Conflicts(tt.a, tt.b); got != tt.want {
			t.Errorf("Conflicts(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSerializableSimpleCases(t *testing.T) {
	serial := []Event{
		ev(Update, 1, op.Read, "x"), ev(Update, 1, op.Write, "x"),
		ev(Update, 2, op.Read, "x"), ev(Update, 2, op.Write, "x"),
	}
	if !IsSerializable(serial) {
		t.Errorf("serial history must be serializable")
	}
	lostUpdate := []Event{
		ev(Update, 1, op.Read, "x"), ev(Update, 2, op.Read, "x"),
		ev(Update, 1, op.Write, "x"), ev(Update, 2, op.Write, "x"),
	}
	if IsSerializable(lostUpdate) {
		t.Errorf("lost-update history must not be serializable")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if !IsSerializable(nil) {
		t.Errorf("empty history is serializable")
	}
	if !IsEpsilonSerial(nil) {
		t.Errorf("empty history is epsilon-serial")
	}
	one := []Event{ev(Update, 1, op.Write, "x")}
	if !IsSerializable(one) {
		t.Errorf("singleton history is serializable")
	}
}

func TestOverlapEmptyForSerialQuery(t *testing.T) {
	// A query that runs entirely between two update ETs overlaps nothing.
	events := []Event{
		ev(Update, 1, op.Write, "x"),
		ev(Query, 9, op.Read, "x"),
		ev(Update, 2, op.Write, "x"),
	}
	// U2 starts during Q9's span? Q9's span is one event (index 1); U2
	// starts at index 2, after Q9's last. U1 finished before Q9 started.
	if got := Overlap(events, 9); len(got) != 0 {
		t.Errorf("Overlap = %v, want empty", got)
	}
}

func TestOverlapRestrictedToQueryObjects(t *testing.T) {
	events := []Event{
		ev(Update, 1, op.Write, "unrelated"),
		ev(Query, 9, op.Read, "x"),
		ev(Update, 1, op.Write, "unrelated2"),
		ev(Query, 9, op.Read, "y"),
	}
	if got := Overlap(events, 9); len(got) != 0 {
		t.Errorf("update ET not touching query objects must not count: %v", got)
	}
	events2 := []Event{
		ev(Update, 1, op.Write, "z"),
		ev(Query, 9, op.Read, "x"),
		ev(Update, 1, op.Write, "x"), // touches a query object
		ev(Query, 9, op.Read, "y"),
	}
	if got := Overlap(events2, 9); len(got) != 1 || got[0] != 1 {
		t.Errorf("Overlap = %v, want [1]", got)
	}
}

func TestOverlapUnknownQuery(t *testing.T) {
	if got := Overlap(paperLog1(), 42); got != nil {
		t.Errorf("Overlap(unknown) = %v, want nil", got)
	}
}

func TestLogRecordingAndString(t *testing.T) {
	var l Log
	for _, e := range paperLog1() {
		l.Append(e)
	}
	if l.Len() != 6 {
		t.Errorf("Len = %d, want 6", l.Len())
	}
	want := "R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)"
	if got := l.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := len(l.Events()); got != 6 {
		t.Errorf("Events len = %d", got)
	}
}

// TestCheckerAgainstBruteForce cross-validates the polynomial conflict-
// graph checker against exhaustive permutation search on random small
// histories.
func TestCheckerAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objects := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		events := make([]Event, n)
		for i := range events {
			kind := op.Read
			if rng.Intn(2) == 0 {
				kind = op.Write
			}
			events[i] = ev(Update, uint64(1+rng.Intn(4)), kind, objects[rng.Intn(len(objects))])
		}
		fast := IsSerializable(events)
		slow := BruteForceSerializable(events)
		if fast != slow {
			t.Fatalf("trial %d: IsSerializable=%v but brute force=%v for %v", trial, fast, slow, events)
		}
	}
}

// TestEpsilonSerialImpliedBySR checks SR ⇒ ε-serial (deleting events
// cannot create a cycle).
func TestEpsilonSerialImpliedBySR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objects := []string{"a", "b"}
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		events := make([]Event, n)
		for i := range events {
			class := Update
			kind := op.Write
			if rng.Intn(3) == 0 {
				class = Query
				kind = op.Read
			}
			events[i] = ev(class, uint64(1+rng.Intn(4)), kind, objects[rng.Intn(len(objects))])
		}
		if IsSerializable(events) && !IsEpsilonSerial(events) {
			t.Fatalf("trial %d: SR history not epsilon-serial: %v", trial, events)
		}
	}
}

// TestOrderedUpdatesAlwaysEpsilonSerial is ORDUP's core argument (§3.1):
// if update ETs execute serially (in order), any interleaving of query
// reads leaves the log ε-serial.
func TestOrderedUpdatesAlwaysEpsilonSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	objects := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		var events []Event
		// Three update ETs run back-to-back (serial).
		for et := uint64(1); et <= 3; et++ {
			for k := 0; k < 2; k++ {
				events = append(events, ev(Update, et, op.Write, objects[rng.Intn(3)]))
			}
		}
		// Sprinkle query reads at random positions.
		for q := 0; q < 4; q++ {
			pos := rng.Intn(len(events) + 1)
			e := ev(Query, uint64(10+rng.Intn(2)), op.Read, objects[rng.Intn(3)])
			events = append(events[:pos], append([]Event{e}, events[pos:]...)...)
		}
		if !IsEpsilonSerial(events) {
			t.Fatalf("trial %d: serial updates + query interleaving must be ε-serial", trial)
		}
	}
}

func TestEventString(t *testing.T) {
	e := ev(Update, 2, op.Write, "a")
	if got := e.String(); got != "W2(a)" {
		t.Errorf("Event.String() = %q, want W2(a)", got)
	}
	q := ev(Query, 3, op.Read, "b")
	if got := q.String(); got != "R3(b)" {
		t.Errorf("Event.String() = %q, want R3(b)", got)
	}
}

func TestClassString(t *testing.T) {
	if Query.String() != "Q" || Update.String() != "U" {
		t.Errorf("Class strings wrong: %v %v", Query, Update)
	}
}
