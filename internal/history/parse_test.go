package history

import (
	"strings"
	"testing"
	"testing/quick"

	"esr/internal/op"
)

func TestParsePaperLog(t *testing.T) {
	events, err := Parse("R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("parsed %d events", len(events))
	}
	// ET1 and ET2 write -> update ETs; ET3 only reads -> query ET.
	for _, e := range events {
		want := Update
		if e.ET == 3 {
			want = Query
		}
		if e.Class != want {
			t.Errorf("ET%d classified %v, want %v", e.ET, e.Class, want)
		}
	}
	if IsSerializable(events) {
		t.Errorf("paper log must not be SR")
	}
	if !IsEpsilonSerial(events) {
		t.Errorf("paper log must be ε-serial")
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := "R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)"
	events, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(events); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestParseWhitespaceAndCase(t *testing.T) {
	events, err := Parse("  r1(x)\n\tw2(y)  ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events", len(events))
	}
	if events[0].Op.Kind != op.Read || events[1].Op.Kind != op.Write {
		t.Errorf("kinds = %v %v", events[0].Op.Kind, events[1].Op.Kind)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"X1(a)", // unknown op letter
		"R(a)",  // missing ET number
		"R1a",   // missing parens
		"R1()",  // empty object
		"W99",   // no parens at all
		"R1(a",  // unterminated
		"Rx(a)", // non-numeric ET
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	if events, err := Parse(""); err != nil || len(events) != 0 {
		t.Errorf("empty input should parse to no events: %v %v", events, err)
	}
}

func TestParseFormatProperty(t *testing.T) {
	// Any generated event list formats to a string that parses back to
	// the same events (modulo class inference, which is deterministic).
	f := func(ids []uint8, kinds []bool) bool {
		n := len(ids)
		if len(kinds) < n {
			n = len(kinds)
		}
		if n == 0 {
			return true
		}
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			k := op.Read
			if kinds[i] {
				k = op.Write
			}
			o := op.Op{Kind: k, Object: "o" + string(rune('a'+ids[i]%3))}
			if k == op.Write {
				o.Arg = 1
			}
			events[i] = Event{ET: uint64(ids[i]%5) + 1, Op: o}
		}
		// Assign classes the way Parse would.
		writers := map[uint64]bool{}
		for _, e := range events {
			if e.Op.Kind.IsUpdate() {
				writers[e.ET] = true
			}
		}
		for i := range events {
			if writers[events[i].ET] {
				events[i].Class = Update
			} else {
				events[i].Class = Query
			}
		}
		parsed, err := Parse(Format(events))
		if err != nil || len(parsed) != len(events) {
			return false
		}
		for i := range parsed {
			if parsed[i].ET != events[i].ET || parsed[i].Class != events[i].Class ||
				parsed[i].Op.Kind != events[i].Op.Kind || parsed[i].Op.Object != events[i].Op.Object {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatMatchesLogString(t *testing.T) {
	events, _ := Parse("W1(x) R2(x)")
	var l Log
	for _, e := range events {
		l.Append(e)
	}
	if Format(events) != l.String() {
		t.Errorf("Format %q != Log.String %q", Format(events), l.String())
	}
	if !strings.Contains(Format(events), "W1(x)") {
		t.Errorf("Format output malformed")
	}
}
