// Package history records operation histories ("logs" in the paper's
// terminology, §2.1) and decides their correctness classes:
//
//   - IsSerializable: the log is conflict-serializable (an SRlog).
//   - IsEpsilonSerial: after deleting all query-ET operations, the
//     remaining update-ET operations form an SRlog — the paper's
//     definition of an ε-serial log.
//   - Overlap: the set of update ETs a query ET overlaps, which §2.1
//     establishes as "an upper bound of error on the amount of
//     inconsistency that a query ET may accumulate".
//
// These checkers make the paper's correctness criterion executable: the
// test suite and the E3/E10 experiments run them over recorded histories
// instead of appealing to the formal proofs in [24].
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"esr/internal/op"
)

// Class distinguishes query ETs from update ETs.
type Class int

const (
	// Query marks an ET containing only reads (Q^ET).
	Query Class = iota
	// Update marks an ET containing at least one write (U^ET).
	Update
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Query {
		return "Q"
	}
	return "U"
}

// Event is one operation instance in a history.
type Event struct {
	// ET identifies the epsilon-transaction that issued the operation.
	ET uint64
	// Class is the issuing ET's class.
	Class Class
	// Op is the operation (a Read, or any update kind).
	Op op.Op
}

// String renders the event in the paper's R1(a)/W1(b) notation.
func (e Event) String() string {
	letter := "W"
	if e.Op.Kind == op.Read {
		letter = "R"
	}
	return fmt.Sprintf("%s%d(%s)", letter, e.ET, e.Op.Object)
}

// Log is a thread-safe, append-only history of events.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Append records an event at the end of the history.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Events returns a copy of the recorded history in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// String renders the whole history in the paper's compact notation, e.g.
// "R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)".
func (l *Log) String() string {
	events := l.Events()
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Conflicts reports whether two events conflict: same object, different
// ETs, and at least one of them an update.  (R/W and W/W dependencies,
// §2.1.)
func Conflicts(a, b Event) bool {
	if a.ET == b.ET || a.Op.Object != b.Op.Object {
		return false
	}
	return a.Op.Kind.IsUpdate() || b.Op.Kind.IsUpdate()
}

// IsSerializable reports whether the history is conflict-serializable:
// the transaction conflict graph is acyclic.
func IsSerializable(events []Event) bool {
	_, ok := SerialOrder(events)
	return ok
}

// SerialOrder returns a serial order of the ETs in the history that is
// conflict-equivalent to it, or ok=false if none exists (the conflict
// graph has a cycle).
func SerialOrder(events []Event) ([]uint64, bool) {
	// Build the conflict graph.
	adj := make(map[uint64]map[uint64]bool)
	nodes := make(map[uint64]bool)
	for _, e := range events {
		nodes[e.ET] = true
	}
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if Conflicts(events[i], events[j]) {
				from, to := events[i].ET, events[j].ET
				if adj[from] == nil {
					adj[from] = make(map[uint64]bool)
				}
				adj[from][to] = true
			}
		}
	}
	// Kahn's algorithm with deterministic (sorted) node iteration.
	indeg := make(map[uint64]int, len(nodes))
	for n := range nodes {
		indeg[n] = 0
	}
	for _, tos := range adj {
		for to := range tos {
			indeg[to]++
		}
	}
	var ready []uint64
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sortU64(ready)
	var order []uint64
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var unlocked []uint64
		for to := range adj[n] {
			indeg[to]--
			if indeg[to] == 0 {
				unlocked = append(unlocked, to)
			}
		}
		sortU64(unlocked)
		ready = append(ready, unlocked...)
	}
	if len(order) != len(nodes) {
		return nil, false
	}
	return order, true
}

// DeleteQueries returns the history with all query-ET events removed.
func DeleteQueries(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if e.Class != Query {
			out = append(out, e)
		}
	}
	return out
}

// IsEpsilonSerial reports whether the history is an ε-serial log: "after
// deleting query ETs from the log, the remaining update ETs form an
// SRlog" (§2.1).
func IsEpsilonSerial(events []Event) bool {
	return IsSerializable(DeleteQueries(events))
}

// Overlap returns the IDs of the update ETs that the query ET q overlaps,
// per §2.1: "the set of all update ETs that had not finished at the first
// operation of the query ET, plus all the update ETs that started during
// the query ET", restricted to "update ETs that actually affect objects
// that the query ET seeks to access".  The result is sorted.
func Overlap(events []Event, q uint64) []uint64 {
	first, last := -1, -1
	queryObjects := make(map[string]bool)
	for i, e := range events {
		if e.ET == q {
			if first < 0 {
				first = i
			}
			last = i
			queryObjects[e.Op.Object] = true
		}
	}
	if first < 0 {
		return nil
	}
	span := make(map[uint64][2]int) // update ET -> [first, last] event index
	touches := make(map[uint64]bool)
	for i, e := range events {
		if e.Class != Update {
			continue
		}
		s, ok := span[e.ET]
		if !ok {
			s = [2]int{i, i}
		} else {
			s[1] = i
		}
		span[e.ET] = s
		if e.Op.Kind.IsUpdate() && queryObjects[e.Op.Object] {
			touches[e.ET] = true
		}
	}
	var out []uint64
	for et, s := range span {
		if !touches[et] {
			continue
		}
		unfinishedAtStart := s[0] < first && s[1] >= first
		startedDuring := s[0] >= first && s[0] <= last
		if unfinishedAtStart || startedDuring {
			out = append(out, et)
		}
	}
	sortU64(out)
	return out
}

// BruteForceSerializable decides conflict-serializability by searching
// every permutation of the ETs for one that is conflict-equivalent to the
// history.  Exponential — use only in tests as an oracle for
// IsSerializable on small histories.
func BruteForceSerializable(events []Event) bool {
	nodes := make(map[uint64]bool)
	for _, e := range events {
		nodes[e.ET] = true
	}
	ets := make([]uint64, 0, len(nodes))
	for n := range nodes {
		ets = append(ets, n)
	}
	sortU64(ets)
	// Collect ordered conflicting ET pairs.
	type pair struct{ a, b uint64 }
	var cons []pair
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if Conflicts(events[i], events[j]) {
				cons = append(cons, pair{events[i].ET, events[j].ET})
			}
		}
	}
	pos := make(map[uint64]int, len(ets))
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(ets) {
			for _, c := range cons {
				if pos[c.a] > pos[c.b] {
					return false
				}
			}
			return true
		}
		for i := k; i < len(ets); i++ {
			ets[k], ets[i] = ets[i], ets[k]
			pos[ets[k]] = k
			if try(k + 1) {
				return true
			}
			ets[k], ets[i] = ets[i], ets[k]
		}
		return false
	}
	return try(0)
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
