package history

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics, and that anything it accepts
// round-trips through Format and classifies consistently.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)",
		"r1(x)",
		"W2(y) W2(y) W2(y)",
		"",
		"R1(a",
		"X9(q)",
		"W18446744073709551615(obj)",
		"R1(()",
		"W1())",
		strings.Repeat("R1(a) ", 50),

		// Table 2 conflict shapes (ORDUP): each pair of update ETs
		// touching a shared object in every RU/WU combination.
		"R1(x) W2(x) W1(y)",       // RU then WU on x between update ETs
		"W1(x) R2(x) W2(y)",       // WU then RU
		"W1(x) W2(x) W1(y) W2(y)", // WU/WU, serializable order
		"W1(x) W2(x) W2(y) W1(y)", // WU/WU crossed — non-SR
		"R1(x) W2(x) R1(y) W2(y)", // RU/WU crossed reads
		"W1(a) W1(b) W2(a) W2(b)", // two updaters, consistent order

		// Table 3 / ε-serializability shapes: a pure query ET (RQ locks)
		// interleaved with updaters.  The query's reads are inconsistent
		// (it sees a after W1 but b before W1) — not SR, but admissible
		// under ε-serializability, which is exactly what the checker
		// must distinguish.
		"W1(a) R2(a) W1(b) R2(b)",
		"R3(a) W1(a) W1(b) R3(b)",
		"W1(a) W2(b) R3(a) R3(b) W1(c) W2(c)",

		// Query-only history: every ET classifies as a query ET (§2.1).
		"R1(a) R2(a) R1(b) R2(b)",

		// One ET reading and writing its own objects (self-conflict is
		// never a conflict).
		"R1(a) W1(a) R1(a) W1(a)",

		// Whitespace variety the grammar must tolerate.
		"R1(a)\tW2(b)\nR3(c)  W4(d)",

		// Malformed shapes near the grammar's edges.
		"R(a)",                           // missing ET number
		"R1()",                           // empty object
		"W-1(a)",                         // negative ET
		"W99999999999999999999999999(a)", // ET overflows uint64
		"R1(a))",                         // trailing junk
		"R1(a)W2(b)",                     // missing separator — one malformed token
		"Ŕ1(a)",                          // non-ASCII operation letter
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Parse(input)
		if err != nil {
			return
		}
		// Accepted histories must round-trip.
		out := Format(events)
		events2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format output unparseable: %q -> %q: %v", input, out, err)
		}
		if len(events2) != len(events) {
			t.Fatalf("round trip changed length: %d -> %d", len(events), len(events2))
		}
		for i := range events {
			if events[i].ET != events2[i].ET || events[i].Class != events2[i].Class ||
				events[i].Op.Kind != events2[i].Op.Kind || events[i].Op.Object != events2[i].Op.Object {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, events[i], events2[i])
			}
		}
		// The checkers must terminate without panicking on anything
		// parseable, and SR must imply ε-serial.
		if IsSerializable(events) && !IsEpsilonSerial(events) {
			t.Fatalf("SR history not ε-serial: %q", out)
		}
	})
}
