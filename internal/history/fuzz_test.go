package history

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics, and that anything it accepts
// round-trips through Format and classifies consistently.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)",
		"r1(x)",
		"W2(y) W2(y) W2(y)",
		"",
		"R1(a",
		"X9(q)",
		"W18446744073709551615(obj)",
		"R1(()",
		"W1())",
		strings.Repeat("R1(a) ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Parse(input)
		if err != nil {
			return
		}
		// Accepted histories must round-trip.
		out := Format(events)
		events2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format output unparseable: %q -> %q: %v", input, out, err)
		}
		if len(events2) != len(events) {
			t.Fatalf("round trip changed length: %d -> %d", len(events), len(events2))
		}
		for i := range events {
			if events[i].ET != events2[i].ET || events[i].Class != events2[i].Class ||
				events[i].Op.Kind != events2[i].Op.Kind || events[i].Op.Object != events2[i].Op.Object {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, events[i], events2[i])
			}
		}
		// The checkers must terminate without panicking on anything
		// parseable, and SR must imply ε-serial.
		if IsSerializable(events) && !IsEpsilonSerial(events) {
			t.Fatalf("SR history not ε-serial: %q", out)
		}
	})
}
