package history

import (
	"fmt"
	"strconv"
	"strings"

	"esr/internal/op"
)

// Parse reads a history written in the paper's compact notation:
//
//	R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)
//
// Each token is R or W (case-insensitive), an ET number, and an object
// name in parentheses.  Tokens may be separated by any whitespace.  An
// ET is classified as a query ET exactly when all of its operations are
// reads (§2.1: "An ET containing only reads is a query ET ... an ET
// containing at least one write is an update ET").
func Parse(s string) ([]Event, error) {
	fields := strings.Fields(s)
	events := make([]Event, 0, len(fields))
	writers := make(map[uint64]bool)
	for i, tok := range fields {
		e, err := parseToken(tok)
		if err != nil {
			return nil, fmt.Errorf("history: token %d %q: %w", i+1, tok, err)
		}
		if e.Op.Kind.IsUpdate() {
			writers[e.ET] = true
		}
		events = append(events, e)
	}
	for i := range events {
		if writers[events[i].ET] {
			events[i].Class = Update
		} else {
			events[i].Class = Query
		}
	}
	return events, nil
}

func parseToken(tok string) (Event, error) {
	if len(tok) < 4 {
		return Event{}, fmt.Errorf("too short")
	}
	var kind op.Kind
	switch tok[0] {
	case 'R', 'r':
		kind = op.Read
	case 'W', 'w':
		kind = op.Write
	default:
		return Event{}, fmt.Errorf("operation must be R or W")
	}
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return Event{}, fmt.Errorf("missing (object)")
	}
	etNum, err := strconv.ParseUint(tok[1:open], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad ET number: %w", err)
	}
	object := tok[open+1 : len(tok)-1]
	if object == "" {
		return Event{}, fmt.Errorf("empty object name")
	}
	o := op.Op{Kind: kind, Object: object}
	if kind == op.Write {
		o.Arg = 1
	}
	return Event{ET: etNum, Op: o}, nil
}

// Format renders events back into the compact notation; Format(Parse(s))
// round-trips any normalized history string.
func Format(events []Event) string {
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}
