package analysis

import (
	"go/ast"
	"strings"
)

// StripeAccess is rule A7: the sharded stores' stripe arrays may only
// be resolved through their accessors.  Store and MVStore hash each
// object to a stripe (fnv-1a over the object name); any code that
// indexes the `stripes` slice by hand duplicates the hash, and a
// mismatch silently splits one object's state across two stripes — two
// mutexes, two cell maps, lost updates.  Concentrating the resolution
// in `stripe` (and whole-store scans in `forEachStripe`) makes the
// hash-to-stripe mapping single-sourced, so this rule flags every other
// function that touches the field.
//
// The check is structural: a selector for a field named `stripes` on a
// value whose named type is Store or MVStore, outside the constructors
// that build the array and the two accessors.  Test files are exempt
// (white-box stripe tests are how the sharding itself is verified).
var StripeAccess = &Analyzer{
	Rule: "A7",
	Name: "stripeaccess",
	Doc:  "storage stripe arrays may only be resolved through the stripe/forEachStripe accessors",
	Run:  runStripeAccess,
}

// stripedStoreTypes are the named types whose stripes field is private
// to the accessors.
var stripedStoreTypes = map[string]bool{"Store": true, "MVStore": true}

// stripeAccessors are the only functions allowed to touch the field:
// the constructors that build the stripe array and the accessors every
// other method resolves through.
var stripeAccessors = map[string]bool{
	"stripe": true, "forEachStripe": true, "NewStore": true, "NewMVStore": true,
}

func runStripeAccess(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || stripeAccessors[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "stripes" {
					return true
				}
				tv, ok := p.Info.Types[sel.X]
				if !ok {
					return true
				}
				name := namedTypeName(tv.Type)
				if !stripedStoreTypes[name] {
					return true
				}
				diags = append(diags, p.diag("A7", sel,
					"%s indexes %s.stripes directly (resolve the stripe through the stripe/forEachStripe accessors so the hash-to-stripe mapping stays single-sourced)",
					fd.Name.Name, name))
				return true
			})
		}
	}
	return diags
}
