package analysis

import (
	"go/ast"
	"strings"
)

// StripeAccess is rule A7: hashed shard state may only be resolved
// through its accessors.  Two layers hash a key to a slot, and both
// break the same way when the resolution is duplicated by hand:
//
//   - The sharded stores: Store and MVStore hash each object to a
//     stripe (fnv-1a over the object name).  Any code that indexes the
//     `stripes` slice by hand duplicates the hash, and a mismatch
//     silently splits one object's state across two stripes — two
//     mutexes, two cell maps, lost updates.  Resolution is
//     concentrated in `stripe` (whole-store scans in `forEachStripe`).
//
//   - The cluster's ordering domains: Cluster carves the keyspace into
//     shards, each with its own sequencer, seqrep client, per-site
//     queues, WALs, intent journals, and replica ensembles, all stored
//     in shard-indexed slices.  Indexing a shard slot by hand routes
//     an ET into another domain's total order — duplicate sequence
//     numbers in one domain, permanent gaps in another, divergent
//     stores.  Resolution is concentrated in the shard.go accessors
//     (shardSeq, linkFor, inQueueFor, walFor, ...).
//
// Both checks are structural and flag every function outside the
// accessor/constructor allowlists.  Test files are exempt (white-box
// shard tests are how the sharding itself is verified).
var StripeAccess = &Analyzer{
	Rule: "A7",
	Name: "stripeaccess",
	Doc:  "stripe arrays and per-shard ordering state may only be resolved through their accessors",
	Run:  runStripeAccess,
}

// stripedStoreTypes are the named types whose stripes field is private
// to the accessors.
var stripedStoreTypes = map[string]bool{"Store": true, "MVStore": true}

// stripeAccessors are the only functions allowed to touch the field:
// the constructors that build the stripe array and the accessors every
// other method resolves through.
var stripeAccessors = map[string]bool{
	"stripe": true, "forEachStripe": true, "NewStore": true, "NewMVStore": true,
}

// clusterShardFields maps each per-shard field of core.Cluster to the
// index depth at which a shard slot is resolved.  seqs and seqClients
// are shard-indexed directly (depth 1); inQ, wals, intents, and
// seqReps are keyed by site first and shard second (depth 2), so
// plain site lookups like `c.wals[id]` stay legal; out is keyed
// (from, to, shard) (depth 3).  Indexing at exactly that depth outside
// the accessors is a finding — shallower prefixes hand off whole
// per-site slices without picking a domain and are fine.
var clusterShardFields = map[string]int{
	"seqs":       1,
	"seqClients": 1,
	"inQ":        2,
	"wals":       2,
	"intents":    2,
	"seqReps":    2,
	"out":        3,
}

// shardAccessors are the only functions allowed to resolve a shard
// slot by hand: the constructors that build the per-shard arrays and
// the shard.go accessors everything else routes through.
var shardAccessors = map[string]bool{
	"shardSeq": true, "seqClientFor": true, "linkFor": true,
	"inQueueFor": true, "walFor": true, "intentFor": true,
	"seqRepFor": true, "forEachShard": true, "forEachLink": true,
	"forEachShardLink": true, "forEachInQ": true, "forEachWAL": true,
	"New": true, "Setup": true, "hostSequencerReplicas": true,
}

// indexChain unwinds a (possibly nested) index expression down to the
// selector it indexes, returning the selector and the number of index
// levels applied to it.  `c.out[a][b][s]` yields (c.out, 3).
func indexChain(ix *ast.IndexExpr) (*ast.SelectorExpr, int) {
	depth := 0
	var n ast.Expr = ix
	for {
		inner, ok := n.(*ast.IndexExpr)
		if !ok {
			break
		}
		depth++
		n = inner.X
	}
	sel, _ := n.(*ast.SelectorExpr)
	return sel, depth
}

func runStripeAccess(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if stripeAccessors[fd.Name.Name] || n.Sel.Name != "stripes" {
						return true
					}
					tv, ok := p.Info.Types[n.X]
					if !ok {
						return true
					}
					name := namedTypeName(tv.Type)
					if !stripedStoreTypes[name] {
						return true
					}
					diags = append(diags, p.diag("A7", n,
						"%s indexes %s.stripes directly (resolve the stripe through the stripe/forEachStripe accessors so the hash-to-stripe mapping stays single-sourced)",
						fd.Name.Name, name))
				case *ast.IndexExpr:
					if shardAccessors[fd.Name.Name] {
						return true
					}
					sel, depth := indexChain(n)
					if sel == nil {
						return true
					}
					need, shardField := clusterShardFields[sel.Sel.Name]
					if !shardField || depth != need {
						return true
					}
					tv, ok := p.Info.Types[sel.X]
					if !ok || namedTypeName(tv.Type) != "Cluster" {
						return true
					}
					diags = append(diags, p.diag("A7", n,
						"%s resolves a shard slot of Cluster.%s by hand (route through the shard.go accessors so the key-to-domain mapping stays single-sourced)",
						fd.Name.Name, sel.Sel.Name))
				}
				return true
			})
		}
	}
	return diags
}
