package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism is rule A4: wall-clock reads (time.Now/Since/Until)
// and the math/rand global source are banned inside the simulator, the
// network model and the table renderer.  Every asynchronous-propagation
// claim this reproduction makes is backed by simulation runs; those
// runs (and the regenerated paper tables) are only evidence if the same
// seed always produces the same execution.  Randomness must flow from
// an explicitly seeded *rand.Rand, never the process-global source, and
// the simulator must not branch on wall-clock time — measurement-only
// timing goes through internal/stopwatch, which is the single
// sanctioned wall-clock entry point.
var SimDeterminism = &Analyzer{
	Rule: "A4",
	Name: "determinism",
	Doc:  "no time.Now or math/rand global functions inside internal/sim, internal/network, internal/tabular",
	Run:  runSimDeterminism,
}

// deterministicPackages are the import-path suffixes A4 applies to.
var deterministicPackages = []string{
	"internal/sim",
	"internal/network",
	"internal/tabular",
}

// seededRandConstructors are the math/rand package-level functions that
// do not touch the global source: they build or feed an explicit,
// seeded generator.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 explicit-state constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// bannedTimeFuncs read the wall clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runSimDeterminism(p *Package) []Diagnostic {
	applies := false
	for _, suffix := range deterministicPackages {
		if strings.HasSuffix(p.Path, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			// Package-level functions only: methods on *rand.Rand or
			// time.Time values are explicit state and stay legal.
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[obj.Name()] {
					diags = append(diags, p.diag("A4", sel,
						"time.%s reads the wall clock inside a determinism-critical package (use internal/stopwatch for measurement, injected state for logic)", obj.Name()))
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[obj.Name()] {
					diags = append(diags, p.diag("A4", sel,
						"rand.%s draws from the process-global random source (use an explicitly seeded *rand.Rand)", obj.Name()))
				}
			}
			return true
		})
	}
	return diags
}
