package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package, the unit every
// analyzer consumes.
type Package struct {
	// Path is the import path ("esr/internal/lock").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files of this load.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables.
	Info *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved against the
// module tree, everything else through the source importer (GOROOT).
// The loader memoizes, so shared dependencies type-check once.
type Loader struct {
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod ("esr").
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: read go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       make(map[string]*Package),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// FindModuleRoot walks upward from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package under the module root (the "./..."
// pattern), skipping testdata, hidden and underscore directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.Load(l.pathForDir(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// pathForDir maps a directory inside the module to its import path.
func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// dirForPath maps a module import path to its directory.
func (l *Loader) dirForPath(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if sourceFile(e) {
			return true
		}
	}
	return false
}

func sourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Load type-checks the module package with the given import path,
// memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker
	p, err := l.check(l.dirForPath(path), path)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir type-checks the single package in dir under the supplied
// import path, without memoizing.  Analyzer fixture tests use it to
// stand a testdata package in for a real one (e.g. as
// "esr/internal/sim" so path-gated analyzers fire).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.check(dir, asPath)
}

func (l *Loader) check(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !sourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// loaderImporter routes module-internal imports to the loader and
// everything else (the standard library) to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, (*Loader)(li).ModuleRoot, 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
