package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"esr/internal/analysis/flow"
)

// This file is the shared interprocedural lock engine under rules A1
// (lockpair) and A8 (lockheld).  It runs one summary fixpoint over the
// call graph and one diagnostic pass, producing both rules' findings:
//
//   - Per function, a forward dataflow over the CFG tracks an abstract
//     lock state: for every lock key (a canonical receiver expression
//     like "e.mu", "s.Locks", or "st.mu/R" for read locks), whether it
//     MAY and whether it MUST be held, plus the original acquisition
//     position.
//   - Each function's exit state becomes its summary: the locks it
//     acquires for its caller (keys rooted at the receiver, a
//     parameter, or a package-level variable are rewritten into the
//     caller's namespace at each call site; keys rooted at locals
//     propagate as opaque holds), the caller-owned locks it releases,
//     and whether it may block.
//   - Summaries feed back into callers' transfer functions; a worklist
//     over the call graph iterates to fixpoint.
//
// Havoc for unknown callees (interface dispatch, function values,
// out-of-module calls) is asymmetric by design: an unknown callee is
// assumed NOT to release the caller's locks — the sound direction for
// leak detection — and assumed not to block, except for the explicit
// blocking primitives (time.Sleep, (*os.File).Sync, the
// network.Transport methods, unbuffered channel operations), which are
// classified directly even though their bodies are out of reach.

// rootKind classifies how a lock key's leftmost identifier binds, which
// decides whether the key can be rewritten into a caller's namespace.
type rootKind int

const (
	rootLocal  rootKind = iota // function-local: unmappable, becomes opaque
	rootRecv                   // method receiver
	rootParam                  // parameter (paramIdx)
	rootGlobal                 // package-level variable: canonical, no rewrite
	rootOpaque                 // already-opaque hold propagated from a callee
)

// lockKey identifies one lock in one function's namespace.
type lockKey struct {
	key      string // canonical expression ("e.mu", "st.mu/R", "opaque:…")
	kind     rootKind
	paramIdx int    // valid when kind == rootParam
	rootName string // leftmost identifier; a prefix of key (except global/opaque)
}

// lockFact is the abstract state of one lock along the paths reaching a
// program point.
type lockFact struct {
	k    lockKey
	may  bool // held on at least one path
	must bool // held on every path
	pos  token.Pos // original acquisition site (kept across call boundaries)
	desc string    // for opaque facts: "s.Locks acquired in (*Engine).serve"
}

// relFact records a release of a caller-owned lock (one this function
// never acquired itself).
type relFact struct {
	k    lockKey
	must bool // released on every path
}

// lockState is the dataflow fact: held locks, keys covered by a
// registered defer, and caller-owned keys released.
type lockState struct {
	held     map[string]lockFact
	deferred map[string]bool
	released map[string]relFact
}

func newLockState() *lockState {
	return &lockState{
		held:     map[string]lockFact{},
		deferred: map[string]bool{},
		released: map[string]relFact{},
	}
}

func (s *lockState) clone() *lockState {
	n := newLockState()
	for k, v := range s.held {
		n.held[k] = v
	}
	for k := range s.deferred {
		n.deferred[k] = true
	}
	for k, v := range s.released {
		n.released[k] = v
	}
	return n
}

func (s *lockState) anyHeld() bool {
	for _, f := range s.held {
		if f.may {
			return true
		}
	}
	return false
}

// heldKeys returns the held keys in sorted order (for deterministic
// messages).
func (s *lockState) heldKeys() []string {
	var out []string
	for k, f := range s.held {
		if f.may {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (s *lockState) acquire(k lockKey, must bool, pos token.Pos, desc string) {
	if f, ok := s.held[k.key]; ok {
		f.may = true
		f.must = f.must || must
		if f.pos == token.NoPos || (pos != token.NoPos && pos < f.pos) {
			f.pos = pos
		}
		if f.desc == "" {
			f.desc = desc
		}
		s.held[k.key] = f
		return
	}
	s.held[k.key] = lockFact{k: k, may: true, must: must, pos: pos, desc: desc}
}

func (s *lockState) release(k lockKey) {
	if _, ok := s.held[k.key]; ok {
		delete(s.held, k.key)
		return
	}
	// Releasing a lock this function never acquired: a caller-owned
	// release, recorded for the function's summary.
	if r, ok := s.released[k.key]; ok {
		r.must = true
		s.released[k.key] = r
		return
	}
	s.released[k.key] = relFact{k: k, must: true}
}

// joinLockStates merges src into dst: held anywhere counts as may-held,
// held everywhere counts as must-held; deferred releases union; a
// caller-owned release survives as must only when both paths release.
func joinLockStates(dst, src *lockState) (*lockState, bool) {
	out := newLockState()
	changed := false
	for key, a := range dst.held {
		if b, ok := src.held[key]; ok {
			f := a
			f.may = a.may || b.may
			f.must = a.must && b.must
			if f.pos == token.NoPos || (b.pos != token.NoPos && b.pos < f.pos) {
				f.pos = b.pos
			}
			if f.desc == "" {
				f.desc = b.desc
			}
			out.held[key] = f
		} else {
			f := a
			f.must = false
			out.held[key] = f
		}
	}
	for key, b := range src.held {
		if _, ok := dst.held[key]; !ok {
			f := b
			f.must = false
			out.held[key] = f
		}
	}
	for k := range dst.deferred {
		out.deferred[k] = true
	}
	for k := range src.deferred {
		out.deferred[k] = true
	}
	for key, a := range dst.released {
		if b, ok := src.released[key]; ok {
			out.released[key] = relFact{k: a.k, must: a.must && b.must}
		} else {
			out.released[key] = relFact{k: a.k, must: false}
		}
	}
	for key, b := range src.released {
		if _, ok := dst.released[key]; !ok {
			out.released[key] = relFact{k: b.k, must: false}
		}
	}
	// Change detection against dst.
	if len(out.held) != len(dst.held) || len(out.deferred) != len(dst.deferred) || len(out.released) != len(dst.released) {
		return out, true
	}
	for key, f := range out.held {
		if g, ok := dst.held[key]; !ok || g.may != f.may || g.must != f.must || g.pos != f.pos {
			changed = true
			break
		}
	}
	if !changed {
		for key := range out.deferred {
			if !dst.deferred[key] {
				changed = true
				break
			}
		}
	}
	if !changed {
		for key, r := range out.released {
			if g, ok := dst.released[key]; !ok || g.must != r.must {
				changed = true
				break
			}
		}
	}
	return out, changed
}

// summaryAcq is one lock a function hands back to its caller still
// held.
type summaryAcq struct {
	k    lockKey
	must bool
	pos  token.Pos
	desc string
}

// lockSummary is a function's interprocedural effect.
type lockSummary struct {
	acquires []summaryAcq // sorted by key
	releases []relFact    // caller-owned releases, sorted by key; must only
	blocks   bool
	blockPos token.Pos
	blockDesc string // root cause, e.g. "time.Sleep at queue.go:556"
}

func (a *lockSummary) equal(b *lockSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.blocks != b.blocks || a.blockDesc != b.blockDesc || len(a.acquires) != len(b.acquires) || len(a.releases) != len(b.releases) {
		return false
	}
	for i := range a.acquires {
		x, y := a.acquires[i], b.acquires[i]
		if x.k.key != y.k.key || x.must != y.must || x.pos != y.pos || x.desc != y.desc {
			return false
		}
	}
	for i := range a.releases {
		if a.releases[i].k.key != b.releases[i].k.key || a.releases[i].must != b.releases[i].must {
			return false
		}
	}
	return true
}

// lockFlow is the engine's per-module state.
type lockFlow struct {
	mod       *Module
	graph     *flow.Graph
	fset      *token.FileSet
	summaries map[*flow.FuncNode]*lockSummary

	// Channel objects created unbuffered / with capacity anywhere in the
	// module; an object in both sets is treated as buffered (unknown).
	unbuffered map[types.Object]bool
	buffered   map[types.Object]bool
	// Positions of channel operations inside a select that has a
	// default clause: non-blocking by construction.
	nonblocking map[token.Pos]bool

	// Per-computeSummary scratch: whether the current function blocks.
	curBlocks   bool
	curBlockPos token.Pos
	curBlockDesc string

	reported map[token.Pos]bool // A1 dedup across functions (by acquire site)
	a1, a8   []Diagnostic
}

// lockFlowResults runs the engine once per module and memoizes both
// rules' diagnostics.
func (m *Module) lockFlowResults() (a1, a8 []Diagnostic) {
	if m.lockDone {
		return m.lockA1, m.lockA8
	}
	lf := &lockFlow{
		mod:         m,
		graph:       m.Graph(),
		summaries:   map[*flow.FuncNode]*lockSummary{},
		unbuffered:  map[types.Object]bool{},
		buffered:    map[types.Object]bool{},
		nonblocking: map[token.Pos]bool{},
		reported:    map[token.Pos]bool{},
	}
	if len(m.Pkgs) > 0 {
		lf.fset = m.Pkgs[0].Fset
	}
	lf.scanChannels()
	lf.graph.Fixpoint(func(fn *flow.FuncNode) bool {
		sum := lf.computeSummary(fn)
		if sum.equal(lf.summaries[fn]) {
			return false
		}
		lf.summaries[fn] = sum
		return true
	})
	for _, fn := range lf.graph.Funcs {
		lf.reportFunc(fn)
	}
	m.lockDone = true
	m.lockA1, m.lockA8 = lf.a1, lf.a8
	return m.lockA1, m.lockA8
}

// --- classification ---

// lockAction classifies a call's effect on lock state.
type lockAction int

const (
	lockNone lockAction = iota
	lockAcquire
	lockRelease
)

// classifyLockCall decides whether a call acquires or releases, and on
// which receiver expression.  flavor distinguishes read locks ("/R") so
// mu.RLock pairs with mu.RUnlock, not mu.Unlock.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockAction, ast.Expr, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone, nil, ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return lockNone, nil, ""
	}
	switch {
	case strings.HasSuffix(obj.Pkg().Path(), "internal/lock") && methodOnNamed(obj, "Manager"):
		switch sel.Sel.Name {
		case "Acquire", "TryAcquire":
			return lockAcquire, sel.X, ""
		case "ReleaseAll", "Close":
			// Close unblocks waiters and poisons the manager; treating it
			// as a release avoids flagging shutdown paths.
			return lockRelease, sel.X, ""
		}
	case obj.Pkg().Path() == "sync" && (methodOnNamed(obj, "Mutex") || methodOnNamed(obj, "RWMutex")):
		switch sel.Sel.Name {
		case "Lock", "TryLock":
			return lockAcquire, sel.X, ""
		case "Unlock":
			return lockRelease, sel.X, ""
		case "RLock", "TryRLock":
			return lockAcquire, sel.X, "/R"
		case "RUnlock":
			return lockRelease, sel.X, "/R"
		}
	}
	return lockNone, nil, ""
}

// methodOnNamed reports whether fn is a method whose receiver's named
// type (through a pointer) is called name.
func methodOnNamed(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// blockingCall classifies the explicit blocking primitives A8 guards
// against: time.Sleep, fsync, and transport I/O.  Returns "" when the
// call is not one of them.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
		return "time.Sleep"
	case obj.Pkg().Path() == "os" && obj.Name() == "Sync" && methodOnNamed(obj, "File"):
		return "(*os.File).Sync (fsync)"
	case strings.HasSuffix(obj.Pkg().Path(), "internal/network"):
		switch obj.Name() {
		case "Send", "Call", "SendBatch":
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return "transport " + obj.Name()
			}
		}
	}
	return ""
}

// baseIdent returns the leftmost identifier of a selector chain, or nil
// when the chain roots in something unnamable (a call result, a
// literal).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// makeKey canonicalizes a lock receiver expression in fn's namespace.
func (lf *lockFlow) makeKey(fn *flow.FuncNode, expr ast.Expr, flavor string) lockKey {
	keyStr := types.ExprString(expr) + flavor
	base := baseIdent(expr)
	if base == nil {
		return lockKey{key: keyStr, kind: rootLocal}
	}
	info := fn.Pkg.Info
	obj := info.Uses[base]
	if obj == nil {
		obj = info.Defs[base]
	}
	if pn, ok := obj.(*types.PkgName); ok {
		// Cross-package global: canonicalize as g:<pkgpath>.<rest>.
		rest := strings.TrimPrefix(keyStr, base.Name+".")
		return lockKey{key: "g:" + pn.Imported().Path() + "." + rest, kind: rootGlobal}
	}
	v, ok := obj.(*types.Var)
	if !ok || !strings.HasPrefix(keyStr, base.Name) {
		return lockKey{key: keyStr, kind: rootLocal}
	}
	if fn.RecvVar != nil && v == fn.RecvVar {
		return lockKey{key: keyStr, kind: rootRecv, rootName: base.Name}
	}
	for i, p := range fn.ParamVars {
		if p != nil && v == p {
			return lockKey{key: keyStr, kind: rootParam, paramIdx: i, rootName: base.Name}
		}
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		rest := strings.TrimPrefix(keyStr, base.Name)
		return lockKey{key: "g:" + v.Pkg().Path() + "." + base.Name + rest, kind: rootGlobal}
	}
	return lockKey{key: keyStr, kind: rootLocal, rootName: base.Name}
}

// mapKey rewrites a callee's summary key into the caller's namespace at
// one call site.  ok is false when the key cannot be expressed there
// (which only happens for malformed sites; local callee keys are
// already opaque by the time they reach a summary).
func (lf *lockFlow) mapKey(caller *flow.FuncNode, site *flow.CallSite, k lockKey) (lockKey, bool) {
	switch k.kind {
	case rootGlobal, rootOpaque:
		return k, true
	case rootRecv:
		sel, ok := site.Call.Fun.(*ast.SelectorExpr)
		if !ok {
			return lockKey{}, false
		}
		return lf.rebase(caller, k, sel.X), true
	case rootParam:
		if site.Call.Ellipsis != token.NoPos || k.paramIdx >= len(site.Call.Args) {
			return lockKey{}, false
		}
		return lf.rebase(caller, k, site.Call.Args[k.paramIdx]), true
	}
	return lockKey{}, false
}

// rebase replaces a callee key's root with the caller-side argument
// expression and reclassifies the result in the caller's namespace.
func (lf *lockFlow) rebase(caller *flow.FuncNode, k lockKey, arg ast.Expr) lockKey {
	rest := strings.TrimPrefix(k.key, k.rootName)
	argStr := types.ExprString(arg)
	nk := lf.makeKey(caller, arg, "")
	nk.key = argStr + rest
	if nk.kind == rootGlobal {
		// Re-derive the canonical global form for the full chain.
		base := baseIdent(arg)
		if base != nil {
			full := strings.TrimPrefix(nk.key, base.Name)
			obj := caller.Pkg.Info.Uses[base]
			if pn, ok := obj.(*types.PkgName); ok {
				nk.key = "g:" + pn.Imported().Path() + "." + strings.TrimPrefix(argStr+rest, base.Name+".")
			} else if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
				nk.key = "g:" + v.Pkg().Path() + "." + base.Name + full
			}
		}
	}
	return nk
}

// --- channel prepass ---

// scanChannels records which channel-typed objects are ever created
// unbuffered (make without capacity) or buffered, plus the positions of
// channel operations inside select statements with a default clause.
func (lf *lockFlow) scanChannels() {
	for _, p := range lf.mod.Pkgs {
		info := p.Info
		record := func(target ast.Expr, mk *ast.CallExpr) {
			var obj types.Object
			switch t := ast.Unparen(target).(type) {
			case *ast.Ident:
				obj = info.Defs[t]
				if obj == nil {
					obj = info.Uses[t]
				}
			case *ast.SelectorExpr:
				obj = info.Uses[t.Sel]
			}
			if obj == nil {
				return
			}
			if len(mk.Args) >= 2 {
				if tv, ok := info.Types[mk.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
					lf.unbuffered[obj] = true
					return
				}
				lf.buffered[obj] = true
				return
			}
			lf.unbuffered[obj] = true
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i, rhs := range n.Rhs {
							if mk := makeChanCall(info, rhs); mk != nil {
								record(n.Lhs[i], mk)
							}
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i, v := range n.Values {
							if mk := makeChanCall(info, v); mk != nil {
								record(n.Names[i], mk)
							}
						}
					}
				case *ast.CompositeLit:
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if mk := makeChanCall(info, kv.Value); mk != nil {
							if id, ok := kv.Key.(*ast.Ident); ok {
								if obj := info.Uses[id]; obj != nil {
									if len(mk.Args) >= 2 {
										lf.buffered[obj] = true
									} else {
										lf.unbuffered[obj] = true
									}
								}
							}
						}
					}
				case *ast.SelectStmt:
					hasDefault := false
					for _, c := range n.Body.List {
						if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
							hasDefault = true
						}
					}
					if !hasDefault {
						return true
					}
					for _, c := range n.Body.List {
						cc, ok := c.(*ast.CommClause)
						if !ok || cc.Comm == nil {
							continue
						}
						ast.Inspect(cc.Comm, func(x ast.Node) bool {
							switch x := x.(type) {
							case *ast.UnaryExpr:
								if x.Op == token.ARROW {
									lf.nonblocking[x.Pos()] = true
								}
							case *ast.SendStmt:
								lf.nonblocking[x.Pos()] = true
							}
							return true
						})
					}
				}
				return true
			})
		}
	}
}

// makeChanCall returns the call when e is make(chan T[, cap]).
func makeChanCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil
	}
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	if !isChan {
		return nil
	}
	return call
}

// chanObj resolves a channel operand to its object, for the
// unbuffered-channel lookup.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[t]; o != nil {
			return o
		}
		return info.Defs[t]
	case *ast.SelectorExpr:
		return info.Uses[t.Sel]
	}
	return nil
}

// --- transfer ---

// reporter collects diagnostics during the post-fixpoint pass; nil
// during summary computation.
type reporter struct {
	lf *lockFlow
	fn *flow.FuncNode
}

func (r *reporter) a8(pos token.Pos, what string, st *lockState) {
	keys := st.heldKeys()
	if len(keys) == 0 {
		return
	}
	f := st.held[keys[0]]
	lockName := strings.TrimSuffix(f.k.key, "/R")
	if f.desc != "" {
		lockName = f.desc
	}
	extra := ""
	if len(keys) > 1 {
		extra = fmt.Sprintf(" (+%d more)", len(keys)-1)
	}
	held := "is held"
	if !f.must {
		held = "may be held"
	}
	r.lf.a8 = append(r.lf.a8, Diagnostic{
		Pos:  r.lf.fset.Position(pos),
		Rule: "A8",
		Message: fmt.Sprintf("%s while %s %s (acquired at %s)%s",
			what, lockName, held, r.lf.posStr(f.pos), extra),
	})
}

func (lf *lockFlow) posStr(pos token.Pos) string {
	if pos == token.NoPos {
		return "?"
	}
	p := lf.fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// markBlocks records that the function currently being summarized may
// block, keeping the first (root-cause) witness.
func (lf *lockFlow) markBlocks(pos token.Pos, desc string) {
	if lf.curBlocks {
		return
	}
	lf.curBlocks = true
	lf.curBlockPos = pos
	lf.curBlockDesc = desc
}

// evalNode interprets one CFG node, mutating st; with a non-nil
// reporter it also emits A8 findings.
func (lf *lockFlow) evalNode(fn *flow.FuncNode, n ast.Node, st *lockState, rep *reporter) {
	if d, ok := n.(*ast.DeferStmt); ok {
		for key := range lf.deferReleases(fn, d.Call) {
			st.deferred[key] = true
		}
		return
	}
	if g, ok := n.(*ast.GoStmt); ok {
		// The spawned call runs on another goroutine: it neither blocks
		// this one nor changes its lock state.  Its argument expressions
		// do evaluate here.
		for _, a := range g.Call.Args {
			lf.evalNode(fn, a, st, rep)
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			lf.evalCall(fn, x, st, rep)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lf.chanOp(fn, x.X, x.Pos(), "receive", st, rep)
			}
		case *ast.SendStmt:
			lf.chanOp(fn, x.Chan, x.Pos(), "send", st, rep)
		}
		return true
	})
}

func (lf *lockFlow) chanOp(fn *flow.FuncNode, ch ast.Expr, pos token.Pos, what string, st *lockState, rep *reporter) {
	if lf.nonblocking[pos] {
		return
	}
	obj := chanObj(fn.Pkg.Info, ch)
	if obj == nil || !lf.unbuffered[obj] || lf.buffered[obj] {
		return
	}
	desc := fmt.Sprintf("%s on unbuffered channel %s", what, types.ExprString(ch))
	if rep != nil && st.anyHeld() {
		rep.a8(pos, desc, st)
	}
	lf.markBlocks(pos, fmt.Sprintf("%s at %s", desc, lf.posStr(pos)))
}

func (lf *lockFlow) evalCall(fn *flow.FuncNode, call *ast.CallExpr, st *lockState, rep *reporter) {
	info := fn.Pkg.Info
	if action, recvExpr, flavor := classifyLockCall(info, call); action != lockNone {
		k := lf.makeKey(fn, recvExpr, flavor)
		if action == lockAcquire {
			st.acquire(k, true, call.Pos(), "")
		} else {
			st.release(k)
		}
		return
	}
	site := lf.graph.SiteFor(call)
	var sum *lockSummary
	if site != nil {
		sum = lf.summaries[site.Callee]
	}
	if desc := blockingCall(info, call); desc != "" {
		desc = fmt.Sprintf("%s at %s", desc, lf.posStr(call.Pos()))
		if rep != nil && st.anyHeld() {
			rep.a8(call.Pos(), desc, st)
		}
		lf.markBlocks(call.Pos(), desc)
	} else if sum != nil && sum.blocks {
		if rep != nil && st.anyHeld() {
			rep.a8(call.Pos(), fmt.Sprintf("call to %s, which may block (%s)", site.Callee.Name, sum.blockDesc), st)
		}
		// Propagate the root cause, not the nested chain, so deep call
		// stacks keep a readable witness.
		lf.markBlocks(call.Pos(), sum.blockDesc)
	}
	if sum != nil {
		lf.applySummary(fn, site, sum, st)
	}
}

// applySummary maps the callee's lock effects into the caller's state.
func (lf *lockFlow) applySummary(fn *flow.FuncNode, site *flow.CallSite, sum *lockSummary, st *lockState) {
	for _, r := range sum.releases {
		if !r.must {
			continue
		}
		if mk, ok := lf.mapKey(fn, site, r.k); ok {
			st.release(mk)
		}
	}
	for _, a := range sum.acquires {
		mk, ok := lf.mapKey(fn, site, a.k)
		if !ok {
			continue
		}
		st.acquire(mk, a.must, a.pos, a.desc)
	}
}

// deferReleases collects the state keys released by a deferred call:
// the call itself, release calls inside a deferred function literal,
// and the must-release summary of a deferred module function.
func (lf *lockFlow) deferReleases(fn *flow.FuncNode, call *ast.CallExpr) map[string]bool {
	out := map[string]bool{}
	collect := func(c *ast.CallExpr) {
		if action, recvExpr, flavor := classifyLockCall(fn.Pkg.Info, c); action == lockRelease {
			out[lf.makeKey(fn, recvExpr, flavor).key] = true
			return
		}
		if site := lf.graph.SiteFor(c); site != nil {
			if sum := lf.summaries[site.Callee]; sum != nil {
				for _, r := range sum.releases {
					if !r.must {
						continue
					}
					if mk, ok := lf.mapKey(fn, site, r.k); ok {
						out[mk.key] = true
					}
				}
			}
		}
	}
	collect(call)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				collect(inner)
			}
			return true
		})
	}
	return out
}

// --- per-function analysis ---

func (lf *lockFlow) runDataflow(fn *flow.FuncNode, rep *reporter) map[*flow.Block]*lockState {
	c := fn.CFG()
	transfer := func(b *flow.Block, in *lockState) *lockState {
		st := in.clone()
		for _, n := range b.Nodes {
			lf.evalNode(fn, n, st, nil)
		}
		return st
	}
	ins := flow.Forward(c, newLockState(), (*lockState).clone, joinLockStates, transfer)
	if rep != nil {
		// Deterministic replay for diagnostics, block by block.
		for _, b := range c.Blocks {
			in, ok := ins[b]
			if !ok {
				continue
			}
			st := in.clone()
			for _, n := range b.Nodes {
				lf.evalNode(fn, n, st, rep)
			}
		}
	}
	return ins
}

// computeSummary runs the intraprocedural dataflow with current callee
// summaries and distills fn's own summary from its exit state.
func (lf *lockFlow) computeSummary(fn *flow.FuncNode) *lockSummary {
	lf.curBlocks = false
	lf.curBlockPos = token.NoPos
	lf.curBlockDesc = ""
	ins := lf.runDataflow(fn, nil)
	sum := &lockSummary{blocks: lf.curBlocks, blockPos: lf.curBlockPos, blockDesc: lf.curBlockDesc}
	exit, ok := ins[fn.CFG().Exit]
	if !ok {
		return sum
	}
	for _, key := range sortedHeld(exit) {
		f := exit.held[key]
		if !f.may || exit.deferred[key] {
			continue
		}
		k, desc := f.k, f.desc
		if k.kind == rootLocal {
			k = lockKey{key: "opaque:" + f.k.key + "@" + fn.Name, kind: rootOpaque}
			desc = fmt.Sprintf("%s acquired in %s", strings.TrimSuffix(f.k.key, "/R"), fn.Name)
		}
		sum.acquires = append(sum.acquires, summaryAcq{k: k, must: f.must, pos: f.pos, desc: desc})
	}
	var relKeys []string
	for key := range exit.released {
		relKeys = append(relKeys, key)
	}
	sort.Strings(relKeys)
	for _, key := range relKeys {
		r := exit.released[key]
		if !r.must {
			continue
		}
		switch r.k.kind {
		case rootRecv, rootParam, rootGlobal:
			sum.releases = append(sum.releases, r)
		}
	}
	sort.Slice(sum.acquires, func(i, j int) bool { return sum.acquires[i].k.key < sum.acquires[j].k.key })
	return sum
}

func sortedHeld(st *lockState) []string {
	var keys []string
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportFunc emits A8 findings along fn's body and A1 leak findings at
// its exit.
func (lf *lockFlow) reportFunc(fn *flow.FuncNode) {
	rep := &reporter{lf: lf, fn: fn}
	ins := lf.runDataflow(fn, rep)
	exit, ok := ins[fn.CFG().Exit]
	if !ok {
		return
	}
	for _, key := range sortedHeld(exit) {
		f := exit.held[key]
		if !f.may || exit.deferred[key] {
			continue
		}
		// A lock still held at exit is a leak when nobody can release
		// it: its key roots in a local (no caller could name it), or the
		// function has no static caller that could pick the hold up
		// (entry points, interface implementations, goroutine bodies).
		if f.k.kind != rootLocal && f.k.kind != rootOpaque && len(fn.Callers) > 0 {
			continue
		}
		if f.k.kind == rootOpaque && len(fn.Callers) > 0 {
			continue
		}
		if f.pos == token.NoPos || lf.reported[f.pos] {
			continue
		}
		lf.reported[f.pos] = true
		name := strings.TrimSuffix(f.k.key, "/R")
		if f.desc != "" {
			name = f.desc
		}
		lf.a1 = append(lf.a1, Diagnostic{
			Pos:  lf.fset.Position(f.pos),
			Rule: "A1",
			Message: fmt.Sprintf("lock acquired on %s may still be held when %s returns (missing release on some path; add ReleaseAll/Unlock or a defer)",
				name, fn.Name),
		})
	}
}
