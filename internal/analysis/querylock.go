package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"esr/internal/analysis/flow"
)

// QueryLockFree is rule A11: query ETs never acquire lock-manager
// locks.  The unified read path (DESIGN.md §13) serves every
// consistency level from lock-free snapshots — a query that reaches
// lock.Manager.Acquire or TryAcquire has regressed onto the update
// path's 2PL machinery, reintroducing exactly the read/write
// interference the SAFETIME watermark exists to avoid.  The rule walks
// the static call graph from every query-path entry point (engine
// Query/QuerySpec/QueryAt methods, the core QueryAtSite/ReadAtSite
// helpers, and their lowercase query* callees) and flags any reachable
// lock-manager acquisition.
//
// The coherency baselines (2PC-ROWA, quorum) are exempt by package:
// their queries acquire locks by design — that synchronization cost is
// the very thing the paper's asynchronous methods are measured against.
var QueryLockFree = &Analyzer{
	Rule:      "A11",
	Name:      "querylock",
	Doc:       "query-path functions must never acquire lock.Manager locks (queries are lock-free snapshot reads)",
	RunModule: runQueryLock,
}

// queryRootNames are the exact entry-point names that begin a query
// path.
var queryRootNames = map[string]bool{
	"Query": true, "QuerySpec": true, "QueryAt": true, "QueryNumeric": true,
	"ReadAtSite": true, "QueryAtSite": true, "QueryAtSiteSpec": true,
}

// isQueryRoot reports whether the function starts a query path the rule
// must keep lock-free.
func isQueryRoot(n *flow.FuncNode) bool {
	if n.Obj == nil || n.Decl == nil {
		return false
	}
	if pkg := n.Obj.Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), "internal/coherency") {
		return false
	}
	name := n.Decl.Name.Name
	return queryRootNames[name] || strings.HasPrefix(name, "query")
}

func runQueryLock(m *Module) []Diagnostic {
	g := m.Graph()
	byTypes := make(map[*types.Package]*Package, len(m.Pkgs))
	for _, p := range m.Pkgs {
		byTypes[p.Types] = p
	}
	var diags []Diagnostic
	seen := make(map[token.Pos]bool)
	for _, root := range g.Funcs {
		if !isQueryRoot(root) {
			continue
		}
		visited := map[*flow.FuncNode]bool{root: true}
		work := []*flow.FuncNode{root}
		for len(work) > 0 {
			fn := work[0]
			work = work[1:]
			p := byTypes[fn.Pkg.Types]
			if p != nil {
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj, ok := fn.Pkg.Info.Uses[sel.Sel].(*types.Func)
					if !ok || obj.Pkg() == nil {
						return true
					}
					if !strings.HasSuffix(obj.Pkg().Path(), "internal/lock") ||
						!methodOnNamed(obj, "Manager") {
						return true
					}
					if name := obj.Name(); name != "Acquire" && name != "TryAcquire" {
						return true
					}
					if seen[call.Pos()] {
						return true
					}
					seen[call.Pos()] = true
					diags = append(diags, p.diag("A11", call,
						"%s acquires a lock-manager lock on the query path rooted at %s (query ETs are lock-free snapshot reads; use the SAFETIME/drain gates instead)",
						fn.Name, root.Name))
					return true
				})
			}
			for _, cs := range fn.Calls {
				if cs.Callee != nil && !visited[cs.Callee] {
					visited[cs.Callee] = true
					work = append(work, cs.Callee)
				}
			}
		}
	}
	return diags
}
