package analysis

// LockPairing is rule A1: every lock.Manager Acquire/TryAcquire call is
// matched by a ReleaseAll on all return paths (defer-aware), and every
// sync.Mutex/RWMutex Lock is matched by the corresponding Unlock.
// Strict 2PL's correctness (and the deadlock detector's waits-for
// bookkeeping) both assume the shrinking phase always runs; a lock that
// escapes an error branch blocks every later conflicting ET forever.
//
// Since esrvet v2 the rule is interprocedural: the shared lock engine
// (lockflow.go) runs a CFG dataflow per function and propagates lock
// deltas through per-function summaries over the call graph.  A helper
// that acquires a lock every caller releases is clean; a lock leaking
// through a chain of calls is reported once, at the original
// acquisition site, in the outermost function where no caller can still
// release it.
var LockPairing = &Analyzer{
	Rule:      "A1",
	Name:      "lockpair",
	Doc:       "lock acquisitions must be released on all return paths, across call boundaries (defer-aware)",
	RunModule: runLockPairing,
}

func runLockPairing(m *Module) []Diagnostic {
	a1, _ := m.lockFlowResults()
	return a1
}
