package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockPairing is rule A1: every lock.Manager Acquire/TryAcquire call is
// matched by a ReleaseAll on all return paths of the enclosing function
// (defer-aware), and every sync.Mutex/RWMutex Lock is matched by the
// corresponding Unlock.  Strict 2PL's correctness (and the deadlock
// detector's waits-for bookkeeping) both assume the shrinking phase
// always runs; a lock that escapes an error branch blocks every later
// conflicting ET forever.
var LockPairing = &Analyzer{
	Rule: "A1",
	Name: "lockpair",
	Doc:  "lock.Manager acquisitions must be released on all return paths (defer-aware)",
	Run:  runLockPairing,
}

// lockAction classifies a call's effect on lock state.
type lockAction int

const (
	lockNone lockAction = iota
	lockAcquire
	lockRelease
)

// classifyLockCall decides whether a call acquires or releases, and
// under which state key.  Keys combine the receiver expression with the
// lock flavor, so mu.RLock pairs with mu.RUnlock, not mu.Unlock.
func classifyLockCall(p *Package, call *ast.CallExpr) (lockAction, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone, ""
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return lockNone, ""
	}
	recv := types.ExprString(sel.X)
	switch {
	case strings.HasSuffix(obj.Pkg().Path(), "internal/lock") && methodOnNamed(obj, "Manager"):
		switch sel.Sel.Name {
		case "Acquire", "TryAcquire":
			return lockAcquire, recv
		case "ReleaseAll", "Close":
			// Close unblocks waiters and poisons the manager; treating it
			// as a release avoids flagging shutdown paths.
			return lockRelease, recv
		}
	case obj.Pkg().Path() == "sync" && (methodOnNamed(obj, "Mutex") || methodOnNamed(obj, "RWMutex")):
		switch sel.Sel.Name {
		case "Lock":
			return lockAcquire, recv
		case "Unlock":
			return lockRelease, recv
		case "RLock":
			return lockAcquire, recv + "/R"
		case "RUnlock":
			return lockRelease, recv + "/R"
		}
	}
	return lockNone, ""
}

// methodOnNamed reports whether fn is a method whose receiver's named
// type (through a pointer) is called name.
func methodOnNamed(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

func runLockPairing(p *Package) []Diagnostic {
	lp := &lockPairScan{p: p, reported: make(map[token.Pos]bool)}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lp.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				lp.checkFunc(fn.Body)
			}
			return true
		})
	}
	return lp.diags
}

type lockPairScan struct {
	p        *Package
	diags    []Diagnostic
	reported map[token.Pos]bool
}

// lpState is the abstract lock state along one control-flow path.
type lpState struct {
	held     map[string]token.Pos // key -> acquire position
	deferred map[string]bool      // keys released by a registered defer
}

func newLPState() lpState {
	return lpState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s lpState) clone() lpState {
	n := newLPState()
	for k, v := range s.held {
		n.held[k] = v
	}
	for k := range s.deferred {
		n.deferred[k] = true
	}
	return n
}

// merge unions another path's state into s (conservative: held anywhere
// counts as held).
func (s lpState) merge(o lpState) {
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

func (lp *lockPairScan) checkFunc(body *ast.BlockStmt) {
	// Functions with FuncLits nested inside them are scanned with the
	// literals' bodies opaque: a literal runs at an unknown time, so its
	// acquisitions and releases belong to its own scan.
	st := newLPState()
	st, terminated := lp.scanStmts(body.List, st)
	if !terminated {
		lp.leaks(st, body.End())
	}
}

// leaks reports every lock still held (and not defer-released) when a
// path leaves the function.
func (lp *lockPairScan) leaks(st lpState, at token.Pos) {
	for key, pos := range st.held {
		if st.deferred[key] {
			continue
		}
		if lp.reported[pos] {
			continue
		}
		lp.reported[pos] = true
		lp.diags = append(lp.diags, Diagnostic{
			Pos:  lp.p.Fset.Position(pos),
			Rule: "A1",
			Message: "lock acquired on " + strings.TrimSuffix(key, "/R") +
				" may still be held when the function returns (missing release on some path; add ReleaseAll/Unlock or a defer)",
		})
	}
	_ = at
}

// scanStmts interprets a statement list, returning the state at its end
// and whether every path through it terminates (returns/branches away).
func (lp *lockPairScan) scanStmts(stmts []ast.Stmt, st lpState) (lpState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = lp.scanStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (lp *lockPairScan) scanStmt(stmt ast.Stmt, st lpState) (lpState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		lp.scanExpr(s.X, &st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			lp.scanExpr(rhs, &st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lp.scanExpr(v, &st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		for key := range lp.releasesIn(s.Call) {
			st.deferred[key] = true
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lp.scanExpr(r, &st)
		}
		lp.leaks(st, s.Pos())
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; treat as terminated so the
		// fallthrough merge does not double-count it.
		return st, true
	case *ast.BlockStmt:
		return lp.scanStmts(s.List, st)
	case *ast.LabeledStmt:
		return lp.scanStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = lp.scanStmt(s.Init, st)
		}
		lp.scanExpr(s.Cond, &st)
		thenSt, thenTerm := lp.scanStmts(s.Body.List, st.clone())
		var elseSt lpState
		elseTerm := false
		if s.Else != nil {
			elseSt, elseTerm = lp.scanStmt(s.Else, st.clone())
		} else {
			elseSt = st.clone()
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.merge(elseSt)
			return thenSt, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = lp.scanStmt(s.Init, st)
		}
		if s.Cond != nil {
			lp.scanExpr(s.Cond, &st)
		}
		bodySt, _ := lp.scanStmts(s.Body.List, st.clone())
		if s.Cond == nil {
			// for {}: the only way past is break; the body state stands in
			// for whatever path broke out.
			return bodySt, false
		}
		st.merge(bodySt)
		return st, false
	case *ast.RangeStmt:
		lp.scanExpr(s.X, &st)
		bodySt, _ := lp.scanStmts(s.Body.List, st.clone())
		st.merge(bodySt)
		return st, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return lp.scanCases(stmt, st)
	case *ast.GoStmt:
		// The spawned goroutine's body is scanned as its own function;
		// argument expressions still run here.
		for _, a := range s.Call.Args {
			lp.scanExpr(a, &st)
		}
	case *ast.SendStmt:
		lp.scanExpr(s.Value, &st)
	}
	return st, false
}

// scanCases handles switch/type-switch/select uniformly: each clause is
// one path from the pre-state; clause states that fall through the end
// merge.
func (lp *lockPairScan) scanCases(stmt ast.Stmt, st lpState) (lpState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = lp.scanStmt(s.Init, st)
		}
		if s.Tag != nil {
			lp.scanExpr(s.Tag, &st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		hasDefault = true // select blocks until some case runs
	}
	out := newLPState()
	anyFallthrough := false
	allTerminated := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		cs, term := lp.scanStmts(stmts, st.clone())
		if !term {
			out.merge(cs)
			anyFallthrough = true
			allTerminated = false
		}
	}
	if !hasDefault || len(body.List) == 0 {
		// No default: the zero-case path carries the pre-state through.
		out.merge(st)
		anyFallthrough = true
		allTerminated = false
	}
	if !anyFallthrough && allTerminated && len(body.List) > 0 {
		return st, true
	}
	return out, false
}

// scanExpr applies every acquire/release call inside an expression to
// the state, in source order, without descending into function
// literals.
func (lp *lockPairScan) scanExpr(expr ast.Expr, st *lpState) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch action, key := classifyLockCall(lp.p, call); action {
		case lockAcquire:
			if _, already := st.held[key]; !already {
				st.held[key] = call.Pos()
			}
		case lockRelease:
			delete(st.held, key)
		}
		return true
	})
}

// releasesIn collects the state keys released anywhere inside a call —
// either the call itself or, for `defer func() { ... }()`, release
// calls within the literal's body.
func (lp *lockPairScan) releasesIn(call *ast.CallExpr) map[string]bool {
	out := map[string]bool{}
	if action, key := classifyLockCall(lp.p, call); action == lockRelease {
		out[key] = true
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if action, key := classifyLockCall(lp.p, inner); action == lockRelease {
					out[key] = true
				}
			}
			return true
		})
	}
	return out
}
