// Package analysis implements esrvet, the project-specific static
// analyzer for the ESR codebase.
//
// The paper's correctness argument rests on invariants the Go compiler
// cannot see: every lock.Manager acquisition must be released on every
// return path (strict 2PL's shrinking phase), COMMU's relaxed WU/WU
// compatibility (Table 3) is only sound for operations registered as
// commutative, and the asynchronous-propagation results are only
// trustworthy if the simulator is deterministic.  Each analyzer in this
// package machine-checks one of those invariants:
//
//	A1 lock-pairing      — lock.Manager Acquire/TryAcquire matched by
//	                       ReleaseAll (and sync.Mutex Lock by Unlock) on
//	                       all return paths, defer-aware.
//	A2 mutex-by-value    — no sync.Mutex/RWMutex (or struct containing
//	                       one, e.g. lock.Manager) copied by value.
//	A3 commu-registration — every operation kind declared in internal/op
//	                       appears in the commutativity relation and has
//	                       a compensation inverse (Table 3 soundness).
//	A4 sim-determinism   — time.Now/Since/Until and math/rand global
//	                       functions are banned inside internal/sim,
//	                       internal/network and internal/tabular, so
//	                       simulations and table regeneration stay
//	                       reproducible.
//	A5 goroutine-leak    — goroutines spawned in internal/network and
//	                       internal/queue must have a visible join or
//	                       cancellation (WaitGroup.Done, done-channel
//	                       receive, or ctx.Done).
//	A6 metricreg         — a function that emits trace events (Record*
//	                       on a trace ring) must also touch a metrics
//	                       instrument, so every traced pipeline stage
//	                       is visible to /metrics and esrtop too.
//	A7 stripeaccess      — the sharded stores' stripe arrays may only be
//	                       resolved through the stripe/forEachStripe
//	                       accessors, so the hash-to-stripe mapping
//	                       stays single-sourced.
//	A8 lockheld          — no blocking operation (transport
//	                       Send/Call/SendBatch, file Sync/fsync,
//	                       unbuffered channel send/receive, time.Sleep)
//	                       while a lock.Manager acquisition or stripe
//	                       mutex may be held; interprocedural, so a
//	                       lock held by a caller poisons its callees'
//	                       blocking sites too.
//	A9 atomicmix         — a field or package variable whose address is
//	                       ever passed to sync/atomic must never be
//	                       read or written plainly anywhere in the
//	                       module (mixed access is a data race the race
//	                       detector only catches when both sides run).
//	A10 errdrop          — errors returned by WAL/queue/transport
//	                       mutating calls (Append, Sync, Enqueue, Ack,
//	                       Send, Call, ...) must be consumed, not
//	                       discarded with _ or an ignored return.
//	A11 querylock        — query-path functions (engine Query* methods,
//	                       the core read/query helpers, and everything
//	                       they reach in the static call graph) must
//	                       never acquire lock.Manager locks: the unified
//	                       read path serves queries from lock-free
//	                       snapshots gated by SAFETIME watermarks.  The
//	                       coherency baselines are exempt by design.
//
// Rules A1 and A8 are interprocedural: they run on the dataflow engine
// in internal/analysis/flow (per-function CFGs, a static call graph,
// and a worklist fixpoint over per-function lock summaries — see
// lockflow.go).  The remaining rules are per-package (Analyzer.Run) or
// whole-module (Analyzer.RunModule) AST/type walks.
//
// A finding can be suppressed with a trailing comment directive on the
// offending line (or the line above it):
//
//	//esrvet:ignore A1 reason why this is safe
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string // "A1".."A7"
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one esrvet rule.  Exactly one of Run and RunModule is
// set: Run analyzes one package at a time, RunModule sees the whole
// load at once (for interprocedural and cross-package rules).
type Analyzer struct {
	// Rule is the stable rule ID ("A1".."A11").
	Rule string
	// Name is a short slug (used in -only filters).
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one typed package.
	Run func(p *Package) []Diagnostic
	// RunModule analyzes the whole module.
	RunModule func(m *Module) []Diagnostic
}

// All returns every analyzer in rule order.
func All() []*Analyzer {
	return []*Analyzer{
		LockPairing,
		MutexByValue,
		CommuRegistration,
		SimDeterminism,
		GoroutineLeak,
		MetricRegistration,
		StripeAccess,
		LockHeldBlocking,
		AtomicMix,
		ErrDrop,
		QueryLockFree,
	}
}

// RunAll applies every analyzer to every package, filters findings
// suppressed by //esrvet:ignore directives, and returns the remainder
// sorted by position.  Module-level analyzers run once over the whole
// package set; suppression directives from every file apply to them
// too.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	ignores := make(ignoreSet)
	for _, p := range pkgs {
		ignoreDirectivesInto(ignores, p)
	}
	mod := NewModule(pkgs)
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		for _, d := range a.RunModule(mod) {
			if ignores.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			for _, d := range a.Run(p) {
				if ignores.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// ignoreSet records, per file and line, which rules are suppressed.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) suppressed(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	rules := byLine[d.Pos.Line]
	return rules != nil && (rules["all"] || rules[d.Rule])
}

// ignoreDirectives collects //esrvet:ignore comments.  A directive
// suppresses the named rules (space-separated; "all" suppresses every
// rule) on its own line and on the following line, so it can trail the
// offending statement or sit on the line above it.
func ignoreDirectives(p *Package) ignoreSet {
	set := make(ignoreSet)
	ignoreDirectivesInto(set, p)
	return set
}

// ignoreDirectivesInto accumulates one package's directives into an
// existing set (keyed by filename, so packages never collide).
func ignoreDirectivesInto(set ignoreSet, p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//esrvet:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					set[pos.Filename] = byLine
				}
				rules := strings.Fields(text)
				if len(rules) == 0 {
					rules = []string{"all"}
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					m := byLine[line]
					if m == nil {
						m = make(map[string]bool)
						byLine[line] = m
					}
					for _, r := range rules {
						if strings.HasPrefix(r, "A") || r == "all" {
							m[r] = true
						}
					}
				}
			}
		}
	}
}

// diag builds a Diagnostic at a node position.
func (p *Package) diag(rule string, at ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(at.Pos()),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}
