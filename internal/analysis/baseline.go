package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A baseline is a committed snapshot of known findings, so esrvet can
// gate on *new* findings while previously accepted ones age out
// incrementally.  Entries aggregate identical findings per file —
// keyed by (file, rule, message) with a count, not by line — so pure
// line drift from unrelated edits does not invalidate the baseline,
// while any new instance of a known message still fails the build.
//
// Workflow:
//
//	esrvet -baseline scripts/esrvet_baseline.json ./...   # diff mode
//	esrvet -fix-baseline -baseline scripts/... ./...      # regenerate
//
// The committed baseline is empty — the repository is clean under
// A1–A10 — but the mechanism keeps the gate usable when a future rule
// lands with pre-existing findings.

// BaselineEntry aggregates identical findings in one file.
type BaselineEntry struct {
	File    string `json:"file"` // module-root-relative, slash-separated
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Baseline is the committed findings snapshot.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

func baselineKey(file, rule, message string) string {
	return file + "\x00" + rule + "\x00" + message
}

// relFile renders a diagnostic's filename relative to the module root.
func relFile(root, filename string) string {
	if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// NewBaseline snapshots the given findings.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		key := baselineKey(relFile(root, d.Pos.Filename), d.Rule, d.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{File: relFile(root, d.Pos.Filename), Rule: d.Rule, Message: d.Message, Count: 1}
	}
	b := &Baseline{Findings: []BaselineEntry{}}
	for _, e := range counts {
		b.Findings = append(b.Findings, *e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// Filter returns the findings not covered by the baseline: for each
// (file, rule, message) key, occurrences beyond the baselined count.
func (b *Baseline) Filter(root string, diags []Diagnostic) []Diagnostic {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[baselineKey(e.File, e.Rule, e.Message)] += e.Count
	}
	var fresh []Diagnostic
	for _, d := range diags {
		key := baselineKey(relFile(root, d.Pos.Filename), d.Rule, d.Message)
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes a baseline file, stable and human-diffable.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
