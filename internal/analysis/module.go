package analysis

import (
	"esr/internal/analysis/flow"
)

// Module bundles the packages of one analysis run and lazily builds the
// shared interprocedural infrastructure on top of them: the call graph
// and the lock-flow fixpoint that rules A1 and A8 both read.  Rules
// that only need a single package keep using Analyzer.Run; rules that
// need cross-package visibility implement Analyzer.RunModule and
// receive this.
type Module struct {
	Pkgs []*Package

	graph *flow.Graph

	lockDone     bool
	lockA1, lockA8 []Diagnostic
}

// NewModule wraps an already-loaded package set.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs}
}

// Graph returns the call graph over the module's packages, built on
// first use.
func (m *Module) Graph() *flow.Graph {
	if m.graph == nil {
		fps := make([]*flow.Package, len(m.Pkgs))
		for i, p := range m.Pkgs {
			fps[i] = &flow.Package{Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
		}
		m.graph = flow.BuildGraph(fps)
	}
	return m.graph
}
