package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func pos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// newTestLoader builds one loader rooted at the real module, shared per
// test so the standard library type-checks once.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("find module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("new loader: %v", err)
	}
	return l
}

var wantRe = regexp.MustCompile(`// want (A\d+(?: A\d+)*)$`)

// wantDiags extracts the `// want A<n> [A<n>...]` expectations from
// every file of a fixture directory, keyed file:line.
func wantDiags(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(strings.TrimRight(line, " \t"))
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, i+1)
			out[key] = append(out[key], strings.Fields(m[1])...)
		}
	}
	return out
}

// TestAnalyzersOnFixtures runs every analyzer against its clean and
// violating fixture packages and compares findings against the `want`
// comments line by line.
func TestAnalyzersOnFixtures(t *testing.T) {
	loader := newTestLoader(t)
	cases := []struct {
		analyzer *Analyzer
		fixture  string
		asPath   string // import path the fixture pretends to have
	}{
		{LockPairing, "lockpair_clean", "esrfixture/lockpair_clean"},
		{LockPairing, "lockpair_bad", "esrfixture/lockpair_bad"},
		{MutexByValue, "copylock_clean", "esrfixture/copylock_clean"},
		{MutexByValue, "copylock_bad", "esrfixture/copylock_bad"},
		{CommuRegistration, "commureg_clean", "esrfixture/commureg_clean"},
		{CommuRegistration, "commureg_bad", "esrfixture/commureg_bad"},
		// A4/A5 are path-gated: the fixture is loaded as if it were the
		// real package it stands in for.
		{SimDeterminism, "determinism_clean", "esrfixture/internal/sim"},
		{SimDeterminism, "determinism_bad", "esrfixture/internal/sim"},
		{GoroutineLeak, "goleak_clean", "esrfixture/internal/queue"},
		{GoroutineLeak, "goleak_bad", "esrfixture/internal/queue"},
		{MetricRegistration, "metricreg_clean", "esrfixture/metricreg_clean"},
		{MetricRegistration, "metricreg_bad", "esrfixture/metricreg_bad"},
		{StripeAccess, "stripeaccess_clean", "esrfixture/stripeaccess_clean"},
		{StripeAccess, "stripeaccess_bad", "esrfixture/stripeaccess_bad"},
		{LockHeldBlocking, "lockheldio_clean", "esrfixture/lockheldio_clean"},
		{LockHeldBlocking, "lockheldio_bad", "esrfixture/lockheldio_bad"},
		{AtomicMix, "atomicmix_clean", "esrfixture/atomicmix_clean"},
		{AtomicMix, "atomicmix_bad", "esrfixture/atomicmix_bad"},
		{ErrDrop, "errdrop_clean", "esrfixture/errdrop_clean"},
		{ErrDrop, "errdrop_bad", "esrfixture/errdrop_bad"},
		{QueryLockFree, "querylock_clean", "esrfixture/querylock_clean"},
		{QueryLockFree, "querylock_bad", "esrfixture/querylock_bad"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Rule+"/"+tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			pkg, err := loader.LoadDir(dir, tc.asPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			want := wantDiags(t, dir)
			got := make(map[string][]string)
			for _, d := range RunAll([]*Package{pkg}, []*Analyzer{tc.analyzer}) {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				got[key] = append(got[key], d.Rule)
			}
			if strings.HasSuffix(tc.fixture, "_bad") && len(want) == 0 {
				t.Fatalf("violating fixture %s declares no want comments", tc.fixture)
			}
			for key, rules := range want {
				sort.Strings(rules)
				g := append([]string(nil), got[key]...)
				sort.Strings(g)
				if strings.Join(rules, " ") != strings.Join(g, " ") {
					t.Errorf("%s: want %v, got %v", key, rules, g)
				}
			}
			for key, rules := range got {
				if _, ok := want[key]; !ok {
					t.Errorf("%s: unexpected finding(s) %v", key, rules)
				}
			}
		})
	}
}

// TestFixturePolarity guards the acceptance criterion directly: every
// analyzer has a clean fixture with zero findings and a violating
// fixture with at least one.
func TestFixturePolarity(t *testing.T) {
	loader := newTestLoader(t)
	type fixture struct {
		analyzer *Analyzer
		dir      string
		asPath   string
	}
	polar := map[string][2]fixture{
		"A1": {{LockPairing, "lockpair_clean", "esrfixture/a"}, {LockPairing, "lockpair_bad", "esrfixture/b"}},
		"A2": {{MutexByValue, "copylock_clean", "esrfixture/a"}, {MutexByValue, "copylock_bad", "esrfixture/b"}},
		"A3": {{CommuRegistration, "commureg_clean", "esrfixture/a"}, {CommuRegistration, "commureg_bad", "esrfixture/b"}},
		"A4": {{SimDeterminism, "determinism_clean", "esrfixture/internal/sim"}, {SimDeterminism, "determinism_bad", "esrfixture/internal/sim"}},
		"A5": {{GoroutineLeak, "goleak_clean", "esrfixture/internal/queue"}, {GoroutineLeak, "goleak_bad", "esrfixture/internal/queue"}},
		"A6": {{MetricRegistration, "metricreg_clean", "esrfixture/a"}, {MetricRegistration, "metricreg_bad", "esrfixture/b"}},
		"A7": {{StripeAccess, "stripeaccess_clean", "esrfixture/a"}, {StripeAccess, "stripeaccess_bad", "esrfixture/b"}},
		"A8": {{LockHeldBlocking, "lockheldio_clean", "esrfixture/a"}, {LockHeldBlocking, "lockheldio_bad", "esrfixture/b"}},
		"A9": {{AtomicMix, "atomicmix_clean", "esrfixture/a"}, {AtomicMix, "atomicmix_bad", "esrfixture/b"}},
		"A10": {{ErrDrop, "errdrop_clean", "esrfixture/a"}, {ErrDrop, "errdrop_bad", "esrfixture/b"}},
		"A11": {{QueryLockFree, "querylock_clean", "esrfixture/a"}, {QueryLockFree, "querylock_bad", "esrfixture/b"}},
	}
	for rule, pair := range polar {
		clean, bad := pair[0], pair[1]
		cp, err := loader.LoadDir(filepath.Join("testdata", "src", clean.dir), clean.asPath)
		if err != nil {
			t.Fatalf("%s: load clean fixture: %v", rule, err)
		}
		if diags := RunAll([]*Package{cp}, []*Analyzer{clean.analyzer}); len(diags) != 0 {
			t.Errorf("%s: clean fixture has findings: %v", rule, diags)
		}
		bp, err := loader.LoadDir(filepath.Join("testdata", "src", bad.dir), bad.asPath)
		if err != nil {
			t.Fatalf("%s: load bad fixture: %v", rule, err)
		}
		if diags := RunAll([]*Package{bp}, []*Analyzer{bad.analyzer}); len(diags) == 0 {
			t.Errorf("%s: violating fixture has no findings (esrvet would exit zero)", rule)
		}
	}
}

// TestRepositoryIsClean is the gate itself in test form: the module's
// own packages must produce zero findings, so `esrvet ./...` exits
// zero.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check skipped in -short mode")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, d := range RunAll(pkgs, All()) {
		t.Errorf("finding in repository: %s", d)
	}
}

// TestIgnoreDirective pins the suppression contract: same line and the
// line below, rule-scoped.
func TestIgnoreDirective(t *testing.T) {
	set := ignoreSet{
		"f.go": {10: {"A1": true}, 11: {"A1": true}, 20: {"all": true}},
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{Diagnostic{Pos: pos("f.go", 10), Rule: "A1"}, true},
		{Diagnostic{Pos: pos("f.go", 11), Rule: "A1"}, true},
		{Diagnostic{Pos: pos("f.go", 11), Rule: "A2"}, false},
		{Diagnostic{Pos: pos("f.go", 12), Rule: "A1"}, false},
		{Diagnostic{Pos: pos("f.go", 20), Rule: "A4"}, true},
		{Diagnostic{Pos: pos("g.go", 10), Rule: "A1"}, false},
	}
	for _, tc := range cases {
		if got := set.suppressed(tc.d); got != tc.want {
			t.Errorf("suppressed(%s:%d %s) = %v, want %v",
				tc.d.Pos.Filename, tc.d.Pos.Line, tc.d.Rule, got, tc.want)
		}
	}
}
