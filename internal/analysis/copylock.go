package analysis

import (
	"go/ast"
	"go/types"
)

// MutexByValue is rule A2: no sync.Mutex/sync.RWMutex (or any struct
// transitively containing one — notably lock.Manager, whose sync.Cond
// and waits-for maps share the embedded mutex) may be passed, received,
// returned or copied by value.  A copied mutex is a distinct mutex: the
// copy silently stops providing mutual exclusion with the original,
// which is exactly the class of bug -race only catches when two
// goroutines collide at runtime.
var MutexByValue = &Analyzer{
	Rule: "A2",
	Name: "copylock",
	Doc:  "sync.Mutex/RWMutex and structs containing them must not be copied by value",
	Run:  runMutexByValue,
}

// lockHolders are the sync types whose value semantics are broken by
// copying.
var lockHolders = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// containsLockCache memoizes containsLock per package run.
type copylockScan struct {
	p     *Package
	memo  map[types.Type]bool
	diags []Diagnostic
}

// containsLock reports whether copying a value of type t copies a sync
// lock.  Pointers, maps, slices, channels and interfaces are reference
// types: copying them shares, not duplicates, the lock.
func (cs *copylockScan) containsLock(t types.Type) bool {
	if v, ok := cs.memo[t]; ok {
		return v
	}
	cs.memo[t] = false // cycle guard; recursive types recurse via pointers anyway
	result := false
	switch u := t.(type) {
	case *types.Named:
		if u.Obj().Pkg() != nil && u.Obj().Pkg().Path() == "sync" && lockHolders[u.Obj().Name()] {
			result = true
		} else {
			result = cs.containsLock(u.Underlying())
		}
	case *types.Alias:
		result = cs.containsLock(types.Unalias(u))
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if cs.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = cs.containsLock(u.Elem())
	}
	cs.memo[t] = result
	return result
}

func runMutexByValue(p *Package) []Diagnostic {
	cs := &copylockScan{p: p, memo: make(map[types.Type]bool)}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					cs.checkFields(x.Recv, "receiver")
				}
				cs.checkFuncType(x.Type)
			case *ast.FuncLit:
				cs.checkFuncType(x.Type)
			case *ast.AssignStmt:
				cs.checkAssign(x)
			case *ast.RangeStmt:
				cs.checkRange(x)
			case *ast.CallExpr:
				cs.checkCallArgs(x)
			}
			return true
		})
	}
	return cs.diags
}

func (cs *copylockScan) checkFuncType(ft *ast.FuncType) {
	cs.checkFields(ft.Params, "parameter")
	if ft.Results != nil {
		cs.checkFields(ft.Results, "result")
	}
}

func (cs *copylockScan) checkFields(fl *ast.FieldList, role string) {
	for _, field := range fl.List {
		t := cs.p.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if cs.containsLock(t) {
			cs.diags = append(cs.diags, cs.p.diag("A2", field,
				"%s passes %s by value, copying its lock (use a pointer)", role, t))
		}
	}
}

// checkAssign flags `x := *p` and `x = y` where the copied value
// carries a lock.  Composite-literal initialization of a fresh value is
// allowed: a brand-new zero lock is not a copy of a locked one.
func (cs *copylockScan) checkAssign(a *ast.AssignStmt) {
	for i, rhs := range a.Rhs {
		if i >= len(a.Lhs) {
			break
		}
		if !cs.copiesLockValue(rhs) {
			continue
		}
		t := cs.p.Info.Types[rhs].Type
		cs.diags = append(cs.diags, cs.p.diag("A2", a,
			"assignment copies %s by value, copying its lock (use a pointer)", t))
	}
}

// copiesLockValue reports whether evaluating expr yields a copy of an
// existing lock-carrying value (rather than a freshly composed one).
func (cs *copylockScan) copiesLockValue(expr ast.Expr) bool {
	t := cs.p.Info.Types[expr].Type
	if t == nil || !cs.containsLock(t) {
		return false
	}
	switch e := expr.(type) {
	case *ast.CompositeLit:
		return false // fresh value, nothing copied
	case *ast.CallExpr:
		return false // the callee's result duplicates nothing the caller owns
	case *ast.ParenExpr:
		return cs.copiesLockValue(e.X)
	}
	return true // ident, selector, index, star expr: reads an existing value
}

func (cs *copylockScan) checkRange(r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	// In `for _, v := range xs` the value ident is a definition, recorded
	// in Defs rather than Types.
	var t types.Type
	if id, ok := r.Value.(*ast.Ident); ok && cs.p.Info.Defs[id] != nil {
		t = cs.p.Info.Defs[id].Type()
	} else if tv, ok := cs.p.Info.Types[r.Value]; ok {
		t = tv.Type
	}
	if t != nil && cs.containsLock(t) {
		cs.diags = append(cs.diags, cs.p.diag("A2", r.Value,
			"range copies %s elements by value, copying their locks (range over indices or pointers)", t))
	}
}

// checkCallArgs flags passing a lock-carrying value to any call —
// including fmt helpers and interface parameters, which the signature
// checks cannot see.
func (cs *copylockScan) checkCallArgs(call *ast.CallExpr) {
	// Conversions (e.g. T(x)) and new/len-style builtins don't copy into
	// a callee frame in a way the signature check misses; keep this to
	// genuine function calls.
	if cs.p.Info.Types[call.Fun].IsType() {
		return
	}
	for _, arg := range call.Args {
		if cs.copiesLockValue(arg) {
			t := cs.p.Info.Types[arg].Type
			cs.diags = append(cs.diags, cs.p.diag("A2", arg,
				"call passes %s by value, copying its lock (pass a pointer)", t))
		}
	}
}
