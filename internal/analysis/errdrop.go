package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop is rule A10: errors returned by mutating calls on durable
// paths — the WAL, the propagation queue, and the transport — must be
// consumed.  A dropped Append or Sync error silently voids the
// durability the ε-bound argument depends on: the site keeps
// acknowledging writes its log never persisted.  Flagged shapes:
//
//   - an expression statement discarding the whole result,
//   - `_` in the error's position of an assignment,
//   - `go`/`defer` directly on the call (the result is unobservable).
//
// Close is deliberately not in the method set: shutdown paths drain
// best-effort, and flagging every deferred Close would bury the
// durable-path signal.
var ErrDrop = &Analyzer{
	Rule: "A10",
	Name: "errdrop",
	Doc:  "errors from WAL/queue/transport mutating calls must be consumed",
	Run:  runErrDrop,
}

// errDropMethods are the mutating entry points whose error return is
// load-bearing for durability or delivery.
var errDropMethods = map[string]bool{
	"Append": true, "AppendBatch": true, "Sync": true, "Compact": true,
	"Enqueue": true, "EnqueueBatch": true, "Ack": true, "AckBatch": true,
	"Send": true, "SendBatch": true, "Call": true,
}

func runErrDrop(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, ok := durableCall(p, call); ok {
						out = append(out, p.diag("A10", call,
							"error returned by %s is dropped; durable-path errors must be handled (assign and check, don't ignore)", name))
					}
				}
			case *ast.GoStmt:
				if name, ok := durableCall(p, s.Call); ok {
					out = append(out, p.diag("A10", s.Call,
						"error returned by %s is unobservable behind go; call it in a closure that handles the error", name))
				}
			case *ast.DeferStmt:
				if name, ok := durableCall(p, s.Call); ok {
					out = append(out, p.diag("A10", s.Call,
						"error returned by %s is unobservable behind defer; call it in a closure that handles the error", name))
				}
			case *ast.AssignStmt:
				out = append(out, errDropAssign(p, s)...)
			}
			return true
		})
	}
	return out
}

// errDropAssign flags `_`-discarded errors in assignments whose RHS is
// a durable call: both `_ = q.Sync()` and `v, _ := t.Call(...)`.
func errDropAssign(p *Package, s *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	check := func(call *ast.CallExpr, lhs []ast.Expr) {
		name, ok := durableCall(p, call)
		if !ok {
			return
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return
		}
		idx := errResultIndex(tv.Type)
		if idx < 0 || idx >= len(lhs) {
			return
		}
		if id, ok := lhs[idx].(*ast.Ident); ok && id.Name == "_" {
			out = append(out, p.diag("A10", call,
				"error returned by %s is discarded with _; durable-path errors must be handled", name))
		}
	}
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			check(call, s.Lhs)
		}
		return out
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				check(call, s.Lhs[i:i+1])
			}
		}
	}
	return out
}

// durableCall reports whether the call targets one of the durable-path
// mutators, and its display name.
func durableCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	if obj.Pkg().Path() == "os" && obj.Name() == "Sync" && methodOnNamed(obj, "File") {
		return "(*os.File).Sync", true
	}
	path := obj.Pkg().Path()
	if !strings.HasSuffix(path, "internal/wal") &&
		!strings.HasSuffix(path, "internal/queue") &&
		!strings.HasSuffix(path, "internal/network") {
		return "", false
	}
	if !errDropMethods[obj.Name()] {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || errResultIndex(sig.Results()) < 0 {
		return "", false
	}
	name := obj.Name()
	if sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return name, true
}

// errResultIndex returns the index of the error in a call's result type
// (a bare type or a tuple), or -1.
func errResultIndex(t types.Type) int {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErrorType(t) {
			return 0
		}
		return -1
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
