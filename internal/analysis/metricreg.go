package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricRegistration is rule A6: a function that emits a trace event
// (any Record* method on a trace ring) must also touch the metrics
// layer.  Trace events and metrics are two views of the same pipeline
// stage — the ring answers "why was this MSet slow", the registry
// answers "how often and how slow" — and the observability layer is
// only trustworthy if every stage feeds both.  A stage that traces but
// never increments a counter silently disappears from /metrics, esrtop
// and the lag histograms; this rule forces the pairing to happen where
// the event is emitted.
//
// The check is structural: inside a function whose body calls a
// Record/Recordf/RecordMSet/RecordMSetf method on a value whose named
// type is `Ring`, some expression must have one of the metrics
// instrument types (Counter, Gauge, Histogram, their Vec families, Lag,
// Registry, or a per-site SiteMetrics bundle).  The trace package
// itself is exempt (its methods delegate to each other), as are test
// files (tests exercise rings in isolation by design).
var MetricRegistration = &Analyzer{
	Rule: "A6",
	Name: "metricreg",
	Doc:  "trace-emitting functions must also touch a metrics instrument (paired observability)",
	Run:  runMetricRegistration,
}

// metricTypeNames are the named types whose presence in a function
// counts as touching the metrics layer.
var metricTypeNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	"Lag": true, "Registry": true, "SiteMetrics": true,
}

// traceRecordMethods are the ring methods that emit an event.
// RecordSpan is the duration-carrying variant the causal-tracing layer
// emits (net-send, wal-fsync, seq-commit, ...); a span without a paired
// instrument hides that stage from /metrics just like an instant event.
var traceRecordMethods = map[string]bool{
	"Record": true, "Recordf": true, "RecordMSet": true, "RecordMSetf": true,
	"RecordSpan": true,
}

func runMetricRegistration(p *Package) []Diagnostic {
	if p.Types.Name() == "trace" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			emit := firstTraceEmit(p, fd)
			if emit == nil {
				continue
			}
			if !touchesMetrics(p, fd) {
				diags = append(diags, p.diag("A6", emit,
					"%s emits trace events but never touches a metrics instrument (the stage is invisible to /metrics and esrtop; pair the event with a counter, gauge or histogram)", fd.Name.Name))
			}
		}
	}
	return diags
}

// firstTraceEmit returns the first Record* call on a trace ring inside
// the function, or nil.
func firstTraceEmit(p *Package, fd *ast.FuncDecl) ast.Node {
	var emit ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if emit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !traceRecordMethods[sel.Sel.Name] {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if namedTypeName(sig.Recv().Type()) == "Ring" {
			emit = call
		}
		return true
	})
	return emit
}

// touchesMetrics reports whether any expression in the function's body
// (or its receiver/parameters) has a metrics instrument type.
func touchesMetrics(p *Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[expr]; ok {
			if metricTypeNames[namedTypeName(tv.Type)] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedTypeName returns the bare name of the (possibly pointered) named
// type, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
