package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix is rule A9: a struct field or package-level variable whose
// address is ever passed to a sync/atomic function must never be read
// or written plainly anywhere in the module.  Mixed access is a data
// race the runtime race detector only reports when both sides actually
// execute in one run; the type information sees every access site
// statically.
//
// The rule is module-wide in both passes: pass 1 collects the set of
// variable objects (fields and globals; locals are exempt, they cannot
// be shared without escaping through one of the former) used
// atomically anywhere, pass 2 flags every plain use of those objects.
// Taking the address (&x) for an atomic call and composite-literal
// keys (pre-publication initialization) are not plain uses.  The typed
// atomics (atomic.Uint64 and friends) make the rule moot — their
// plain value is inaccessible — which is why the production packages
// prefer them; this rule guards the raw-pointer style.
var AtomicMix = &Analyzer{
	Rule:      "A9",
	Name:      "atomicmix",
	Doc:       "fields accessed via sync/atomic must never be accessed plainly",
	RunModule: runAtomicMix,
}

func runAtomicMix(m *Module) []Diagnostic {
	// Pass 1: objects used atomically, and the identifiers naming them
	// inside &x atomic arguments (excluded from pass 2).
	atomicObjs := map[types.Object]bool{}
	atomicIdents := map[*ast.Ident]bool{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(p, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					var id *ast.Ident
					switch t := ast.Unparen(un.X).(type) {
					case *ast.Ident:
						id = t
					case *ast.SelectorExpr:
						id = t.Sel
					default:
						continue
					}
					if obj := p.Info.Uses[id]; obj != nil && isSharedVar(obj) {
						atomicObjs[obj] = true
						atomicIdents[id] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	// Pass 2: plain uses of those objects.  Identifier-driven, so a
	// field reached through any selector chain is caught at its Sel.
	var out []Diagnostic
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			keyIdents := compositeKeyIdents(f)
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || !atomicObjs[obj] || atomicIdents[id] || keyIdents[id] {
					return true
				}
				out = append(out, p.diag("A9", id,
					"plain access to %s, which is accessed with sync/atomic elsewhere; use atomic loads/stores everywhere (or a typed atomic)", id.Name))
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// isAtomicCall reports whether the call targets one of sync/atomic's
// free functions (atomic.AddInt64, atomic.LoadPointer, ...).  Methods
// of the typed atomics encapsulate their value and need no rule.
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// isSharedVar reports whether obj is a struct field or a package-level
// variable — the objects reachable from more than one goroutine
// without escape analysis.
func isSharedVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// compositeKeyIdents collects identifiers used as composite-literal
// keys (Struct{field: v}), which name a field without accessing it at
// runtime.
func compositeKeyIdents(f *ast.File) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					out[id] = true
				}
			}
		}
		return true
	})
	return out
}
