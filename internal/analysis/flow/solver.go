package flow

// Forward runs a forward dataflow analysis over one CFG to fixpoint and
// returns each reached block's IN state.  Unreachable blocks (no path
// from the entry) have no map entry.
//
//   - entry is the state on entry to the function.
//   - clone must deep-copy a state, so two successors never alias.
//   - join merges src into dst, returning the merged state and whether
//     it differs from dst; it must be monotone for termination.
//   - transfer interprets one block, returning the OUT state for the
//     given IN; it must not mutate in.
//
// Analyses typically run Forward once, then re-walk the reached blocks
// with the final IN states to emit diagnostics at individual nodes.
func Forward[S any](c *CFG, entry S, clone func(S) S, join func(dst, src S) (S, bool), transfer func(b *Block, in S) S) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	in[c.Entry] = entry
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, in[b])
		for _, s := range b.Succs {
			cur, ok := in[s]
			changed := false
			if !ok {
				in[s] = clone(out)
				changed = true
			} else if merged, ch := join(cur, out); ch {
				in[s] = merged
				changed = true
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Fixpoint drives the interprocedural summary computation: compute is
// called per function and reports whether that function's summary
// changed; when it does, every caller is requeued, until no summary
// moves.  Functions are first processed callee-before-caller (postorder
// over the call graph), which reaches the fixpoint in one pass on
// recursion-free graphs.  compute must be monotone over a finite
// summary lattice for termination.
func (g *Graph) Fixpoint(compute func(*FuncNode) bool) {
	order := g.postorder()
	queued := make(map[*FuncNode]bool, len(order))
	work := make([]*FuncNode, len(order))
	copy(work, order)
	for _, n := range order {
		queued[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		if !compute(n) {
			continue
		}
		for _, site := range n.Callers {
			if c := site.Caller; !queued[c] {
				queued[c] = true
				work = append(work, c)
			}
		}
	}
}

// postorder returns the functions callee-first: a DFS postorder over
// the static call edges, seeded from every function in declaration
// order so disconnected components keep a deterministic order.
func (g *Graph) postorder() []*FuncNode {
	seen := make(map[*FuncNode]bool, len(g.Funcs))
	out := make([]*FuncNode, 0, len(g.Funcs))
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, site := range n.Calls {
			visit(site.Callee)
		}
		out = append(out, n)
	}
	for _, n := range g.Funcs {
		visit(n)
	}
	return out
}
