package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a single function declaration and builds its CFG.
// The CFG builder is purely syntactic, so no type information is
// needed.
func buildCFG(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n" + body
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	fn, ok := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	if !ok {
		t.Fatalf("fixture's last decl is not a function")
	}
	return NewCFG(fn.Body), fset
}

// TestCFGDump pins the block/edge structure of the constructs the lock
// analyses depend on: defer as an exit-edge effect, labeled
// break/continue, select with default, panic as control transfer to
// exit, goto loops, and switch fallthrough.
func TestCFGDump(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "defer_and_early_return",
			src: `func f() {
	mu.Lock()
	defer mu.Unlock()
	if c {
		return
	}
	work()
}`,
			want: `
b0 entry: [mu.Lock()] [defer mu.Unlock()] [c] -> b1 b2
b1 if.then: [return] -> b3
b2 if.done: [work()] -> b3
b3 exit:`,
		},
		{
			name: "labeled_break_continue",
			src: `func f() {
outer:
	for i := 0; i < n; i++ {
		for {
			if a {
				continue outer
			}
			if b {
				break outer
			}
			step()
		}
	}
	done()
}`,
			want: `
b0 entry: -> b1
b1 label.outer: [i := 0] -> b2
b2 for.head: [i < n] -> b3 b4
b3 for.body: -> b6
b4 for.done: [done()] -> b13
b5 for.post: [i++] -> b2
b6 for.head: -> b7
b7 for.body: [a] -> b9 b10
b8 for.done: -> b5
b9 if.then: -> b5
b10 if.done: [b] -> b11 b12
b11 if.then: -> b4
b12 if.done: [step()] -> b6
b13 exit:`,
		},
		{
			name: "select_with_default",
			src: `func f() {
	select {
	case v := <-ch:
		use(v)
	case out <- 1:
	default:
		idle()
	}
}`,
			want: `
b0 entry: -> b2 b3 b4
b1 select.done: -> b5
b2 select.comm: [v := <-ch] [use(v)] -> b1
b3 select.comm: [out <- 1] -> b1
b4 select.default: [idle()] -> b1
b5 exit:`,
		},
		{
			name: "panic_recover",
			src: `func f() {
	defer func() {
		if r := recover(); r != nil {
			handle(r)
		}
	}()
	if bad {
		panic("boom")
	}
	ok()
}`,
			want: `
b0 entry: [defer func() { if r := recover(); r != nil { handle(r) } }()] [bad] -> b1 b2
b1 if.then: [panic("boom")] -> b3
b2 if.done: [ok()] -> b3
b3 exit:`,
		},
		{
			name: "goto_loop",
			src: `func f() {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	done()
}`,
			want: `
b0 entry: [i := 0] -> b1
b1 label.loop: [i < n] -> b2 b3
b2 if.then: [i++] -> b1
b3 if.done: [done()] -> b4
b4 exit:`,
		},
		{
			name: "switch_fallthrough",
			src: `func f() {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
}`,
			want: `
b0 entry: [x] -> b2 b3 b4
b1 switch.done: -> b5
b2 switch.case: [1] [one()] -> b3
b3 switch.case: [2] [two()] -> b1
b4 switch.default: [other()] -> b1
b5 exit:`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, fset := buildCFG(t, tc.src)
			got := strings.TrimRight(c.Dump(fset), "\n")
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG dump mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCFGDeferRecorded checks that deferred calls are captured as
// exit-edge effects rather than inlined into blocks.
func TestCFGDeferRecorded(t *testing.T) {
	c, _ := buildCFG(t, `func f() {
	defer a()
	defer b()
	work()
}`)
	if len(c.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(c.Defers))
	}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				// Defer statements appear in blocks (the lock analysis
				// consumes them for deferred releases), which is fine —
				// this test only pins that the Defers list is complete.
				return
			}
		}
	}
}

// TestCFGUnreachable checks that code after an unconditional return
// lands in a block with no predecessors.
func TestCFGUnreachable(t *testing.T) {
	c, _ := buildCFG(t, `func f() {
	return
	dead()
}`)
	preds := make(map[*Block]int)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s]++
		}
	}
	foundDead := false
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			call, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if ce, ok := call.X.(*ast.CallExpr); ok {
				if id, ok := ce.Fun.(*ast.Ident); ok && id.Name == "dead" {
					foundDead = true
					if preds[b] != 0 {
						t.Errorf("dead() block has %d predecessors, want 0", preds[b])
					}
				}
			}
		}
	}
	if !foundDead {
		t.Fatalf("dead() not found in any block")
	}
}
