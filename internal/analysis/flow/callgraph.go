package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Package is the slice of one loaded package the flow engine needs.
// internal/analysis adapts its loader's packages into this shape.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncNode is one function in the call graph: a declared function or
// method (Obj non-nil) or a function literal (Lit non-nil).  Function
// literals are their own nodes — a literal runs at an unknown time, so
// its body is never inlined into the enclosing function's CFG.
type FuncNode struct {
	// Obj is the declared function's type object; nil for literals.
	Obj *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body.
	Body *ast.BlockStmt
	// Pkg is the package the function lives in.
	Pkg *Package
	// Name is a display name for diagnostics: "(*Engine).update2PC",
	// "flushWait", or "func@file.go:123" for literals.
	Name string
	// RecvVar is the receiver variable, when the method names one.
	RecvVar *types.Var
	// ParamVars are the declared parameters, in order.
	ParamVars []*types.Var
	// Calls are this function's resolved outgoing call sites.
	Calls []*CallSite
	// Callers are the resolved call sites that target this function.
	Callers []*CallSite

	cfg *CFG
}

// CFG returns the function's control-flow graph, built on first use.
func (n *FuncNode) CFG() *CFG {
	if n.cfg == nil {
		n.cfg = NewCFG(n.Body)
	}
	return n.cfg
}

// CallSite is one statically resolved call.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode
	Call   *ast.CallExpr
}

// Graph is the call graph over a set of loaded packages.
//
// Resolution is static: direct calls to declared functions and method
// calls whose receiver is a concrete type resolve to their FuncNode.
// Everything else — interface dispatch, calls through function values,
// calls into packages outside the load — is an unknown callee, for
// which SiteFor returns nil and each analysis applies its documented
// havoc (see the analyzers for the per-rule choice).
type Graph struct {
	// Funcs lists every function in deterministic order (package, file,
	// then source position).
	Funcs []*FuncNode

	byObj  map[*types.Func]*FuncNode
	bySite map[*ast.CallExpr]*CallSite
}

// BuildGraph constructs the call graph for the given packages.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		byObj:  make(map[*types.Func]*FuncNode),
		bySite: make(map[*ast.CallExpr]*CallSite),
	}
	// Pass 1: enumerate functions (declarations and literals).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						return true
					}
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						return true
					}
					node := &FuncNode{
						Obj:  obj,
						Decl: d,
						Body: d.Body,
						Pkg:  pkg,
						Name: declName(d),
					}
					node.RecvVar, node.ParamVars = signatureVars(pkg, d.Recv, d.Type.Params)
					g.Funcs = append(g.Funcs, node)
					g.byObj[obj] = node
				case *ast.FuncLit:
					node := &FuncNode{
						Lit:  d,
						Body: d.Body,
						Pkg:  pkg,
						Name: fmt.Sprintf("func@%s", shortPos(pkg.Fset, d.Pos())),
					}
					_, node.ParamVars = signatureVars(pkg, nil, d.Type.Params)
					g.Funcs = append(g.Funcs, node)
				}
				return true
			})
		}
	}
	// Pass 2: resolve each function's own call sites (literals nested
	// inside a body belong to their own node, so walkOwn stops at them).
	for _, fn := range g.Funcs {
		fn := fn
		walkOwn(fn.Body, func(call *ast.CallExpr) {
			callee := g.resolve(fn.Pkg, call)
			if callee == nil {
				return
			}
			site := &CallSite{Caller: fn, Callee: callee, Call: call}
			fn.Calls = append(fn.Calls, site)
			callee.Callers = append(callee.Callers, site)
			g.bySite[call] = site
		})
	}
	return g
}

// Node returns the FuncNode for a declared function, or nil.
func (g *Graph) Node(obj *types.Func) *FuncNode {
	return g.byObj[obj]
}

// SiteFor returns the resolved call site for a call expression, or nil
// when the callee is unknown (interface dispatch, function values,
// out-of-load packages) and havoc applies.
func (g *Graph) SiteFor(call *ast.CallExpr) *CallSite {
	return g.bySite[call]
}

// resolve maps one call expression to its static callee, if any.
func (g *Graph) resolve(pkg *Package, call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return g.byObj[fn.Origin()]
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				return nil // dynamic dispatch: unknown callee
			}
		}
		return g.byObj[fn.Origin()]
	}
	return nil
}

// walkOwn visits every call expression in the body without descending
// into nested function literals.
func walkOwn(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// signatureVars resolves the receiver and parameter idents to their
// type objects.
func signatureVars(pkg *Package, recv *ast.FieldList, params *ast.FieldList) (*types.Var, []*types.Var) {
	var recvVar *types.Var
	if recv != nil && len(recv.List) == 1 && len(recv.List[0].Names) == 1 {
		recvVar, _ = pkg.Info.Defs[recv.List[0].Names[0]].(*types.Var)
	}
	var paramVars []*types.Var
	if params != nil {
		for _, field := range params.List {
			if len(field.Names) == 0 {
				// Unnamed parameter still occupies a position.
				paramVars = append(paramVars, nil)
				continue
			}
			for _, name := range field.Names {
				v, _ := pkg.Info.Defs[name].(*types.Var)
				paramVars = append(paramVars, v)
			}
		}
	}
	return recvVar, paramVars
}

// declName renders a declaration's display name, with the receiver
// type for methods: "flushWait", "(*Engine).update2PC".
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + d.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", base(p.Filename), p.Line)
}

func base(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
