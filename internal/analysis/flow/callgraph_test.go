package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadGraph type-checks a self-contained source string (no imports) and
// builds its call graph.
func loadGraph(t *testing.T, src string) (*Graph, *Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var conf types.Config
	tpkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &Package{Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
	return BuildGraph([]*Package{pkg}), pkg
}

const graphSrc = `package p

type T struct{ n int }

func (t *T) M() { helper() }

type I interface{ M() }

func helper() {}

func callsStatic() { helper() }

func callsMethod(t *T) { t.M() }

func callsInterface(i I) { i.M() }

func callsValue() {
	f := helper
	f()
}

func spawns() {
	go func() {
		helper()
	}()
}
`

func funcByName(t *testing.T, g *Graph, name string) *FuncNode {
	t.Helper()
	for _, fn := range g.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("function %q not in graph (have %v)", name, names(g))
	return nil
}

func names(g *Graph) []string {
	var out []string
	for _, fn := range g.Funcs {
		out = append(out, fn.Name)
	}
	return out
}

// callExprsIn collects the call expressions in a function's own body
// (excluding nested literals), in source order.
func callExprsIn(fn *FuncNode) []*ast.CallExpr {
	var out []*ast.CallExpr
	walkOwn(fn.Body, func(c *ast.CallExpr) { out = append(out, c) })
	return out
}

// TestCallGraphStatic pins direct-call and concrete-method resolution.
func TestCallGraphStatic(t *testing.T) {
	g, _ := loadGraph(t, graphSrc)

	static := funcByName(t, g, "callsStatic")
	if len(static.Calls) != 1 || static.Calls[0].Callee.Name != "helper" {
		t.Errorf("callsStatic calls = %v, want one call to helper", siteNames(static.Calls))
	}

	method := funcByName(t, g, "callsMethod")
	if len(method.Calls) != 1 || method.Calls[0].Callee.Name != "(*T).M" {
		t.Errorf("callsMethod calls = %v, want one call to (*T).M", siteNames(method.Calls))
	}

	// Callers back-edges: helper is called from callsStatic, (*T).M,
	// and the goroutine literal inside spawns.
	helper := funcByName(t, g, "helper")
	var callers []string
	for _, site := range helper.Callers {
		callers = append(callers, site.Caller.Name)
	}
	want := map[string]bool{"callsStatic": true, "(*T).M": true}
	litCaller := false
	for _, c := range callers {
		if strings.HasPrefix(c, "func@p.go:") {
			litCaller = true
			continue
		}
		if !want[c] {
			t.Errorf("unexpected caller of helper: %s", c)
		}
		delete(want, c)
	}
	if len(want) != 0 || !litCaller {
		t.Errorf("helper callers = %v, want callsStatic, (*T).M, and the literal", callers)
	}
}

// TestCallGraphUnknownCallees pins the havoc boundary: interface
// dispatch and calls through function values resolve to nil.
func TestCallGraphUnknownCallees(t *testing.T) {
	g, _ := loadGraph(t, graphSrc)

	iface := funcByName(t, g, "callsInterface")
	if len(iface.Calls) != 0 {
		t.Errorf("callsInterface resolved %v, want none (interface dispatch)", siteNames(iface.Calls))
	}
	calls := callExprsIn(iface)
	if len(calls) != 1 {
		t.Fatalf("callsInterface body has %d calls, want 1", len(calls))
	}
	if site := g.SiteFor(calls[0]); site != nil {
		t.Errorf("SiteFor(i.M()) = %s, want nil", site.Callee.Name)
	}

	value := funcByName(t, g, "callsValue")
	if len(value.Calls) != 0 {
		t.Errorf("callsValue resolved %v, want none (function value)", siteNames(value.Calls))
	}
}

// TestCallGraphLiterals pins that function literals are separate nodes:
// the spawning function does not absorb the literal's calls.
func TestCallGraphLiterals(t *testing.T) {
	g, _ := loadGraph(t, graphSrc)

	spawns := funcByName(t, g, "spawns")
	if len(spawns.Calls) != 0 {
		t.Errorf("spawns resolved %v, want none (literal bodies are separate nodes)", siteNames(spawns.Calls))
	}
	var lit *FuncNode
	for _, fn := range g.Funcs {
		if fn.Lit != nil {
			lit = fn
			break
		}
	}
	if lit == nil {
		t.Fatalf("no literal node in graph: %v", names(g))
	}
	if !strings.HasPrefix(lit.Name, "func@p.go:") {
		t.Errorf("literal name = %q, want func@p.go:<line>", lit.Name)
	}
	if len(lit.Calls) != 1 || lit.Calls[0].Callee.Name != "helper" {
		t.Errorf("literal calls = %v, want one call to helper", siteNames(lit.Calls))
	}
}

// TestCallGraphNodeLookup pins the Obj -> node index used by the
// analyses to jump from a types.Func to its summary.
func TestCallGraphNodeLookup(t *testing.T) {
	g, pkg := loadGraph(t, graphSrc)
	obj, ok := pkg.Types.Scope().Lookup("helper").(*types.Func)
	if !ok {
		t.Fatalf("helper not found in package scope")
	}
	n := g.Node(obj)
	if n == nil || n.Name != "helper" {
		t.Fatalf("Node(helper) = %v", n)
	}
	if got := n.CFG(); got == nil || got != n.CFG() {
		t.Errorf("CFG() not memoized")
	}
}

func siteNames(sites []*CallSite) []string {
	var out []string
	for _, s := range sites {
		out = append(out, s.Callee.Name)
	}
	return out
}
