// Package flow is the dataflow engine under esrvet's interprocedural
// rules: a per-function control-flow graph, a call graph over the
// loaded packages, and worklist fixpoint solvers (intraprocedural over
// CFG blocks, interprocedural over per-function summaries).
//
// Like the loader it sits beside, the package uses only the standard
// library's go/ast and go/types.  It is deliberately engine-only: lock
// classification, blocking-call tables, and diagnostics live in the
// analyzers (internal/analysis), which consume the graphs built here.
package flow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line run of statements
// and condition expressions, ended by a control transfer.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind labels the block's syntactic role ("entry", "for.head",
	// "select.comm", "exit", ...), for dumps and debugging.
	Kind string
	// Nodes are the statements and condition expressions evaluated in
	// this block, in evaluation order.  Condition expressions of if/for/
	// switch appear as bare ast.Expr entries.
	Nodes []ast.Node
	// Succs are the successor blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
//
// Every return path (and the implicit fall-off-the-end path) has an
// edge to the single virtual Exit block, which holds no statements.
// Deferred calls are modeled as exit-edge effects: Defers lists every
// defer statement registered anywhere in the function, and analyses
// apply their effects when interpreting Exit.  This is conservative for
// conditionally registered defers, matching the paper-level contract
// the old intraprocedural A1 already used.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry and the last
	// entry is Exit.  Blocks that lost all predecessors (code after
	// return, break-less for{} exits) remain in the slice; forward
	// analyses never reach them.
	Blocks []*Block
	// Entry is the function's entry block.
	Entry *Block
	// Exit is the single virtual exit block.
	Exit *Block
	// Defers are all defer statements in the function, in source order.
	Defers []*ast.DeferStmt
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*labelInfo),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"}
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// labelInfo tracks one label's targets: the labeled block itself (for
// goto) and, when the label names a loop/switch/select, the break and
// continue destinations.
type labelInfo struct {
	target *Block
	brk    *Block
	cont   *Block
}

type builder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, panic, break, continue, goto) until the next statement
	// opens an unreachable block or a join point resets it.
	cur *Block

	breaks    []*Block // innermost-last break targets
	continues []*Block // innermost-last continue targets
	labels    map[string]*labelInfo
	// pendingLabel is set while the statement under a label is entered,
	// so loop/switch builders can register labeled break/continue.
	pendingLabel *labelInfo
	// fallTarget is the next case clause, the destination of an explicit
	// fallthrough inside the current clause body.
	fallTarget *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds from→to, tolerating a terminated (nil) from.
func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// block returns the current block, opening an unreachable one after a
// terminator so trailing dead statements still have a home.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) labelInfoFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

// takeLabel consumes the pending label (set by the enclosing
// LabeledStmt) for the loop/switch statement being built.
func (b *builder) takeLabel() *labelInfo {
	li := b.pendingLabel
	b.pendingLabel = nil
	return li
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than the one directly under a label discards
	// the pending label.
	if _, ok := s.(*ast.LabeledStmt); !ok {
		defer func() { b.pendingLabel = nil }()
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	case *ast.SendStmt, *ast.IncDecStmt, *ast.AssignStmt, *ast.GoStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		li := b.labelInfoFor(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchLike(b.takeLabel(), s.Init, s.Tag, nil, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.switchLike(b.takeLabel(), s.Init, nil, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		t := b.innermost(b.breaks)
		if s.Label != nil {
			t = b.labelInfoFor(s.Label.Name).brk
		}
		if t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		t := b.innermost(b.continues)
		if s.Label != nil {
			t = b.labelInfoFor(s.Label.Name).cont
		}
		if t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		b.edge(b.cur, b.labelInfoFor(s.Label.Name).target)
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.edge(b.cur, b.fallTarget)
		}
		b.cur = nil
	}
}

func (b *builder) innermost(stack []*Block) *Block {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.block()
	then := b.newBlock("if.then")
	b.edge(cond, then)
	if s.Else == nil {
		b.cur = then
		b.stmts(s.Body.List)
		thenEnd := b.cur
		done := b.newBlock("if.done")
		b.edge(cond, done)
		b.edge(thenEnd, done)
		b.cur = done
		return
	}
	els := b.newBlock("if.else")
	b.edge(cond, els)
	b.cur = then
	b.stmts(s.Body.List)
	thenEnd := b.cur
	b.cur = els
	b.stmt(s.Else)
	elseEnd := b.cur
	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	done := b.newBlock("if.done")
	b.edge(thenEnd, done)
	b.edge(elseEnd, done)
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	lbl := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, done)
	}
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTarget = post
	}
	if lbl != nil {
		lbl.brk, lbl.cont = done, contTarget
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, contTarget)
	b.cur = body
	b.stmts(s.Body.List)
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	lbl := b.takeLabel()
	b.add(s.X)
	head := b.newBlock("range.head")
	b.edge(b.block(), head)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, done)
	if lbl != nil {
		lbl.brk, lbl.cont = done, head
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = done
}

// switchLike builds switch and type-switch graphs: one block per case
// clause, all fed by the head; fallthrough (expression switches only)
// edges into the next clause; a missing default leaves the zero-case
// edge head→done.
func (b *builder) switchLike(lbl *labelInfo, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFallthrough bool) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.block()
	done := b.newBlock("switch.done")
	if lbl != nil {
		lbl.brk = done
	}
	b.breaks = append(b.breaks, done)
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	savedFall := b.fallTarget
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallTarget = nil
		if allowFallthrough && i+1 < len(clauses) {
			b.fallTarget = blocks[i+1]
		}
		b.stmts(cc.Body)
		b.edge(b.cur, done)
	}
	b.fallTarget = savedFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	lbl := b.takeLabel()
	head := b.block()
	done := b.newBlock("select.done")
	if lbl != nil {
		lbl.brk = done
	}
	b.breaks = append(b.breaks, done)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		kind := "select.comm"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

// isPanicCall reports whether the expression statement is a call to the
// predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the CFG as one block per line — the golden-test format:
//
//	b0 entry: [x := 0] -> b1
//	b1 for.head: [x < n] -> b2 b3
//	...
//	b4 exit:
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, " [%s]", nodeString(fset, n))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeString renders one node on a single line, whitespace-collapsed
// and truncated, for Dump.
func nodeString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	const max = 60
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}
