package flow

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// calledSet is the test lattice: the set of function names that may
// have been called on some path. Union join, monotone, finite.
type calledSet map[string]bool

func cloneSet(s calledSet) calledSet {
	out := make(calledSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func joinSet(dst, src calledSet) (calledSet, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}

func transferCalls(b *Block, in calledSet) calledSet {
	out := cloneSet(in)
	for _, n := range b.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
			return true
		})
	}
	return out
}

func sorted(s calledSet) string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

// TestForwardMayAnalysis runs a may-called analysis over branches and a
// loop and checks the state reaching the exit block.
func TestForwardMayAnalysis(t *testing.T) {
	c, _ := buildCFG(t, `func f() {
	a()
	if cond {
		b()
	}
	for i := 0; i < n; i++ {
		d()
	}
	e()
}`)
	in := Forward(c, calledSet{}, cloneSet, joinSet, transferCalls)
	got, ok := in[c.Exit]
	if !ok {
		t.Fatalf("exit block not reached")
	}
	if want := "a b d e"; sorted(got) != want {
		t.Errorf("exit IN = %q, want %q", sorted(got), want)
	}
}

// TestForwardLoopFixpoint checks that loop-carried state converges: a
// call inside the loop body must flow back into the loop head's IN.
func TestForwardLoopFixpoint(t *testing.T) {
	c, _ := buildCFG(t, `func f() {
	for p {
		d()
	}
}`)
	in := Forward(c, calledSet{}, cloneSet, joinSet, transferCalls)
	var head *Block
	for _, b := range c.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no for.head block")
	}
	if !in[head]["d"] {
		t.Errorf("loop head IN = %q, want it to include d via the back edge", sorted(in[head]))
	}
}

// TestForwardUnreachable checks that blocks with no path from the entry
// get no IN state at all, rather than a bottom state.
func TestForwardUnreachable(t *testing.T) {
	c, _ := buildCFG(t, `func f() {
	return
	dead()
}`)
	in := Forward(c, calledSet{}, cloneSet, joinSet, transferCalls)
	for b, s := range in {
		if s["dead"] {
			t.Errorf("dead() reached analysis in block b%d", b.Index)
		}
	}
}

// TestFixpointTransitive computes transitive may-call summaries over a
// three-function chain and a mutual recursion, exercising both the
// callee-first seeding and the caller requeue on change.
func TestFixpointTransitive(t *testing.T) {
	g, _ := loadGraph(t, `package p

func a() { b() }
func b() { c() }
func c() {}

func r1() { r2() }
func r2() { r1() }
`)
	// Summary: the set of function names transitively reachable.
	sum := make(map[*FuncNode]calledSet)
	for _, fn := range g.Funcs {
		sum[fn] = calledSet{}
	}
	g.Fixpoint(func(fn *FuncNode) bool {
		next := cloneSet(sum[fn])
		for _, site := range fn.Calls {
			next[site.Callee.Name] = true
			for k := range sum[site.Callee] {
				next[k] = true
			}
		}
		changed := len(next) != len(sum[fn])
		sum[fn] = next
		return changed
	})
	if got := sorted(sum[funcByName(t, g, "a")]); got != "b c" {
		t.Errorf("reach(a) = %q, want \"b c\"", got)
	}
	if got := sorted(sum[funcByName(t, g, "c")]); got != "" {
		t.Errorf("reach(c) = %q, want empty", got)
	}
	if got := sorted(sum[funcByName(t, g, "r1")]); got != "r1 r2" {
		t.Errorf("reach(r1) = %q, want \"r1 r2\" (mutual recursion converged)", got)
	}
}
