package analysis

import (
	"go/ast"
	"go/types"
)

// CommuRegistration is rule A3: every operation kind declared in the
// operation package must be explicitly registered in the commutativity
// relation (the Commutes method) and have a compensation inverse (the
// Compensate method).  COMMU's Table 3 grants WU/WU and WU/RU lock
// compatibility exactly when the operations commute, and backward
// replica control undoes committed MSets via compensations — both are
// only sound for kinds the relation actually knows about.  A kind that
// silently falls into a default case may be *safe* (defaults are
// conservative) but it is unreviewed: this rule forces the review to
// happen in the algebra, not in production.
//
// The check is structural, so it applies to any package declaring a
// `Kind` type alongside `Commutes` and `Compensate` methods: each
// exported Kind constant must be mentioned — directly or through
// same-package helper functions — in each method's body.  Kinds named
// "Read" are exempt from the compensation requirement (queries have no
// effect to undo).
var CommuRegistration = &Analyzer{
	Rule: "A3",
	Name: "commureg",
	Doc:  "every operation kind must appear in Commutes and have a Compensate inverse",
	Run:  runCommuRegistration,
}

func runCommuRegistration(p *Package) []Diagnostic {
	// Locate the Kind type and the two relation methods.
	kindObj := p.Types.Scope().Lookup("Kind")
	kindType, ok := kindObj.(*types.TypeName)
	if !ok {
		return nil
	}
	decls := packageFuncDecls(p)
	var commutes, compensate *ast.FuncDecl
	for obj, fd := range decls {
		switch obj.Name() {
		case "Commutes":
			commutes = fd
		case "Compensate":
			compensate = fd
		}
	}
	if commutes == nil || compensate == nil {
		return nil
	}

	// Exported constants of type Kind are the registered vocabulary.
	type kindConst struct {
		obj   *types.Const
		ident *ast.Ident
	}
	var kinds []kindConst
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := p.Info.Defs[name].(*types.Const)
					if !ok || !c.Exported() {
						continue
					}
					if types.Identical(c.Type(), kindType.Type()) {
						kinds = append(kinds, kindConst{obj: c, ident: name})
					}
				}
			}
		}
	}

	commutesUses := reachableConstUses(p, decls, commutes)
	compensateUses := reachableConstUses(p, decls, compensate)

	var diags []Diagnostic
	for _, k := range kinds {
		if !commutesUses[k.obj] {
			diags = append(diags, p.diag("A3", k.ident,
				"operation kind %s is not registered in the commutativity relation (Commutes never mentions it; Table 3 soundness is unreviewed for it)", k.obj.Name()))
		}
		if k.obj.Name() == "Read" {
			continue
		}
		if !compensateUses[k.obj] {
			diags = append(diags, p.diag("A3", k.ident,
				"operation kind %s has no compensation inverse (Compensate never mentions it; backward replica control cannot undo it)", k.obj.Name()))
		}
	}
	return diags
}

// packageFuncDecls maps every function/method object to its
// declaration.
func packageFuncDecls(p *Package) map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// reachableConstUses collects the constants referenced by root's body
// or by any same-package function transitively called from it, so
// registration through helpers (e.g. isAdditive) counts.
func reachableConstUses(p *Package, decls map[types.Object]*ast.FuncDecl, root *ast.FuncDecl) map[*types.Const]bool {
	used := make(map[*types.Const]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			switch obj := p.Info.Uses[id].(type) {
			case *types.Const:
				used[obj] = true
			case *types.Func:
				if next, ok := decls[obj]; ok {
					visit(next)
				}
			}
			return true
		})
	}
	visit(root)
	return used
}
