// Package copylock_clean shows the lock-safe idioms A2 must accept:
// pointers everywhere a lock-carrying value moves, fresh composite
// literals, and reference types that share rather than copy.
package copylock_clean

import (
	"sync"

	"esr/internal/lock"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// pointerReceiver and pointer parameters never copy the mutex.
func (c *counter) bump(by int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += by
}

func useByPointer(c *counter, m *lock.Manager) *counter {
	c.bump(1)
	_ = m.Table()
	return c
}

// freshValue builds a brand-new counter; nothing existing is copied.
func freshValue() *counter {
	c := counter{n: 1}
	return &c
}

// referenceContainers share the values behind pointers.
func referenceContainers(cs []*counter, byName map[string]*counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	for i := range cs {
		total += cs[i].n
	}
	if c, ok := byName["a"]; ok {
		total += c.n
	}
	return total
}

// plainStructsCopyFreely: no lock inside, so value semantics are fine.
type point struct{ x, y int }

func movePoint(p point) point {
	p.x++
	return p
}
