// Package commureg_clean is a miniature operation algebra in which
// every kind is registered: each exported Kind constant appears in
// Commutes (directly or via a helper) and every update kind appears in
// Compensate.  A3 must report nothing here.
package commureg_clean

// Kind enumerates the miniature operation vocabulary.
type Kind int

// Operation kinds.
const (
	// Read is the query kind (exempt from compensation).
	Read Kind = iota
	// Set overwrites.
	Set
	// Add is commutative with itself and Sub.
	Add
	// Sub is commutative with itself and Add.
	Sub
)

// Op is one operation.
type Op struct {
	Kind Kind
	Arg  int64
}

// isAdditive registers Add and Sub through a helper, which A3 must
// follow.
func isAdditive(k Kind) bool { return k == Add || k == Sub }

// Commutes mentions every kind, directly or through isAdditive.
func (o Op) Commutes(p Op) bool {
	a, b := o.Kind, p.Kind
	if a == Read && b == Read {
		return true
	}
	if a == Read || b == Read {
		return false
	}
	switch {
	case isAdditive(a) && isAdditive(b):
		return true
	case a == Set && b == Set:
		return o.Arg == p.Arg
	default:
		return false
	}
}

// Compensate mentions every update kind.
func (o Op) Compensate(prev int64) (Op, bool) {
	switch o.Kind {
	case Add:
		return Op{Kind: Sub, Arg: o.Arg}, true
	case Sub:
		return Op{Kind: Add, Arg: o.Arg}, true
	case Set:
		return Op{Kind: Set, Arg: prev}, true
	default:
		return Op{}, false
	}
}
