// Package goleak_clean shows the goroutine shapes A5 must accept: a
// WaitGroup-joined pump, a done-channel select loop, a channel-range
// worker, context cancellation, and a named method resolved through a
// helper.
package goleak_clean

import (
	"context"
	"sync"
)

type pump struct {
	wg   sync.WaitGroup
	kick chan struct{}
	done chan struct{}
	work chan int
}

// startJoined launches a goroutine joined through the WaitGroup.
func (p *pump) startJoined() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.done:
				return
			case <-p.kick:
			}
		}
	}()
}

// startMethod spawns a named method; the select lives in a helper the
// analyzer must follow.
func (p *pump) startMethod() {
	p.wg.Add(1)
	go p.run()
}

func (p *pump) run() {
	defer p.wg.Done()
	p.loopOnce()
}

func (p *pump) loopOnce() {
	select {
	case <-p.done:
	case <-p.kick:
	}
}

// startRange exits when the work channel closes.
func (p *pump) startRange() {
	go func() {
		for n := range p.work {
			_ = n
		}
	}()
}

// startWithContext exits on cancellation.
func startWithContext(ctx context.Context, out chan<- int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case out <- i:
			}
		}
	}()
}
