// Package commureg_bad is a miniature operation algebra with holes: one
// kind missing from the commutativity relation, one with no
// compensation inverse, and one missing from both.
package commureg_bad

// Kind enumerates the miniature operation vocabulary.
type Kind int

// Operation kinds.
const (
	// Read is the query kind.
	Read Kind = iota
	// Set is fully registered.
	Set
	// Add is registered in Commutes but has no compensation.
	Add // want A3
	// Mul silently falls into both defaults.
	Mul // want A3 A3
)

// Op is one operation.
type Op struct {
	Kind Kind
	Arg  int64
}

// Commutes never mentions Mul: its Table 3 behaviour is whatever the
// default case happens to do.
func (o Op) Commutes(p Op) bool {
	a, b := o.Kind, p.Kind
	if a == Read && b == Read {
		return true
	}
	switch {
	case a == Add && b == Add:
		return true
	case a == Set && b == Set:
		return o.Arg == p.Arg
	default:
		return false
	}
}

// Compensate never mentions Add or Mul.
func (o Op) Compensate(prev int64) (Op, bool) {
	switch o.Kind {
	case Set:
		return Op{Kind: Set, Arg: prev}, true
	default:
		return Op{}, false
	}
}
