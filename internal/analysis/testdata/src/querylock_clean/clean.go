// Package querylock_clean satisfies rule A11: queries read lock-free
// snapshots, and lock.Manager acquisitions happen only on the update
// path.
package querylock_clean

import (
	"esr/internal/lock"
	"esr/internal/op"
)

// Engine mirrors a method engine with a lock manager per site.
type Engine struct {
	locks *lock.Manager
	store map[string]int64
}

// Query reads the local state without touching the lock manager — the
// unified read path's eventual level.
func (e *Engine) Query(objects []string) (map[string]int64, error) {
	vals := make(map[string]int64, len(objects))
	for _, obj := range objects {
		vals[obj] = e.store[obj]
	}
	return vals, nil
}

// queryDrained models the conservative path: it waits for the drain
// gate (elided) and then reads, still lock-free.
func (e *Engine) queryDrained(obj string) int64 {
	return e.store[obj]
}

// Update is the update path: WU acquisitions there are legal — A11
// only polices paths rooted at queries.
func (e *Engine) Update(objects []string) error {
	tx := lock.TxID(1)
	for _, obj := range objects {
		if err := e.locks.Acquire(tx, lock.WU, op.WriteOp(obj, 1)); err != nil {
			e.locks.ReleaseAll(tx)
			return err
		}
		e.store[obj]++
	}
	e.locks.ReleaseAll(tx)
	return nil
}
