// Package errdrop_clean holds the A10 non-violations: durable-path
// errors consumed, wrapped, or handled inside a closure.
package errdrop_clean

import (
	"fmt"
	"os"

	"esr/internal/clock"
	"esr/internal/et"
	"esr/internal/network"
	"esr/internal/queue"
	"esr/internal/wal"
)

// checkedAppend propagates the error.
func checkedAppend(w *wal.WAL, m et.MSet) error {
	if err := w.Append(m); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	return nil
}

// assignedAck stores the error in a named variable; what the caller
// does with it is its business.
func assignedAck(q *queue.File, id uint64) error {
	err := q.Ack(id)
	return err
}

// checkedCall consumes both results.
func checkedCall(t network.Transport) ([]byte, error) {
	resp, err := t.Call(clock.SiteID(1), clock.SiteID(2), nil)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// closureEnqueue moves the work to a goroutine without losing the
// error: the closure handles it.
func closureEnqueue(q *queue.File, m queue.Message, errs chan<- error) {
	go func() {
		if err := q.Enqueue(m); err != nil {
			errs <- err
		}
	}()
}

// syncReturned hands the fsync result to the caller.
func syncReturned(f *os.File) error {
	return f.Sync()
}

// closeDropped: Close is deliberately outside the rule — shutdown is
// best-effort drain, not a durable path.
func closeDropped(q *queue.File) {
	q.Close()
}
