// Package errdrop_bad holds the A10 violations: durable-path errors
// dropped on the floor.
package errdrop_bad

import (
	"os"

	"esr/internal/clock"
	"esr/internal/et"
	"esr/internal/network"
	"esr/internal/queue"
	"esr/internal/wal"
)

// ignoredAppend discards the WAL append result entirely: the caller
// acknowledges a write the log may never have seen.
func ignoredAppend(w *wal.WAL, m et.MSet) {
	w.Append(m) // want A10
}

// blankAck discards the ack error with _: the queue may re-deliver
// forever.
func blankAck(q *queue.File, id uint64) {
	_ = q.Ack(id) // want A10
}

// blankCall keeps the payload but drops the transport error.
func blankCall(t network.Transport) []byte {
	resp, _ := t.Call(clock.SiteID(1), clock.SiteID(2), nil) // want A10
	return resp
}

// goEnqueue makes the error unobservable: the goroutine's return value
// vanishes.
func goEnqueue(q *queue.File, m queue.Message) {
	go q.Enqueue(m) // want A10
}

// deferredSync defers the fsync and loses its result.
func deferredSync(f *os.File) {
	defer f.Sync() // want A10
}

// ignoredFileSync drops the raw file fsync on a durable path.
func ignoredFileSync(f *os.File) {
	f.Sync() // want A10
}
