// Package lockheldio_clean holds the A8 non-violations: blocking
// operations outside critical sections, non-blocking channel shapes,
// and goroutine hand-offs.
package lockheldio_clean

import (
	"sync"
	"time"

	"esr/internal/clock"
	"esr/internal/lock"
	"esr/internal/network"
	"esr/internal/op"
)

// sleepAfterUnlock blocks only once the lock is gone.
func sleepAfterUnlock(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
	time.Sleep(time.Millisecond)
}

// callAfterRelease does the round-trip outside the critical section.
func callAfterRelease(m *lock.Manager, t network.Transport, tx lock.TxID) error {
	if err := m.Acquire(tx, lock.WU, op.WriteOp("x", 1)); err != nil {
		return err
	}
	m.ReleaseAll(tx)
	_, err := t.Call(clock.SiteID(1), clock.SiteID(2), nil)
	return err
}

// selectDefaultUnderLock: the unbuffered probe cannot block — select
// with a default clause is a non-blocking poll.
func selectDefaultUnderLock(mu *sync.Mutex, ch chan int) bool {
	done := make(chan struct{})
	mu.Lock()
	defer mu.Unlock()
	select {
	case <-done:
		return false
	default:
		return true
	}
}

// bufferedSendUnderLock: a buffered channel with room does not
// rendezvous.
func bufferedSendUnderLock(mu *sync.Mutex) {
	ch := make(chan int, 1)
	mu.Lock()
	ch <- 1
	mu.Unlock()
}

// spawnUnderLock: the blocking work runs on another goroutine; the
// critical section only pays for the spawn.
func spawnUnderLock(mu *sync.Mutex, t network.Transport) {
	mu.Lock()
	go func() {
		_ = t.Send(clock.SiteID(1), clock.SiteID(2), nil)
	}()
	mu.Unlock()
}

// helperPairThenBlock: the helper-acquired lock is released before the
// transport send, across the same call boundary A8 tracks.
func helperPairThenBlock(mu *sync.Mutex, t network.Transport) {
	acquire(mu)
	release(mu)
	_ = t.Send(clock.SiteID(1), clock.SiteID(2), nil)
}

func acquire(mu *sync.Mutex) { mu.Lock() }
func release(mu *sync.Mutex) { mu.Unlock() }
