// Interprocedural A1 violations: leaks that no single function's body
// reveals.
package lockpair_bad

import "sync"

// acquireDeep is the bottom of a three-call chain; its caller chain
// never releases, so the leak is reported here, at the acquisition.
func acquireDeep(mu *sync.Mutex) {
	mu.Lock() // want A1
}

func acquireMid(mu *sync.Mutex) {
	acquireDeep(mu)
}

// leakThroughThree ends the chain still holding mu and has no caller
// left to release it.
func leakThroughThree(mu *sync.Mutex) {
	acquireMid(mu)
}

// escapedHolder leaks a lock rooted in a local: no caller can even name
// h.mu, so the hold is opaque and reported at the acquisition.
type holder struct {
	mu sync.Mutex
}

func escapedHolder() *holder {
	h := &holder{}
	h.mu.Lock() // want A1
	return h
}

// releaseOnlyOnFlag releases through a helper on one branch only; the
// other branch leaks.
func conditionalHelperRelease(mu *sync.Mutex, flag bool) {
	mu.Lock() // want A1
	if flag {
		unlockHelper(mu)
	}
}

func unlockHelper(mu *sync.Mutex) {
	mu.Unlock()
}
