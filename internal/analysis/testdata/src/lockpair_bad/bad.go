// Package lockpair_bad holds the A1 violations: acquisitions that leak
// on at least one path.
package lockpair_bad

import (
	"sync"

	"esr/internal/lock"
	"esr/internal/op"
)

// leakOnErrorBranch forgets ReleaseAll on the error return: earlier
// iterations' locks stay held forever when a later Acquire deadlocks.
func leakOnErrorBranch(m *lock.Manager, tx lock.TxID, objs []string) error {
	for _, obj := range objs {
		if err := m.Acquire(tx, lock.WU, op.WriteOp(obj, 1)); err != nil { // want A1
			return err
		}
	}
	m.ReleaseAll(tx)
	return nil
}

// neverReleased acquires and falls off the end of the function.
func neverReleased(m *lock.Manager, tx lock.TxID) {
	_ = m.Acquire(tx, lock.RU, op.ReadOp("x")) // want A1
}

// tryAcquireLeak leaks the granted TryAcquire on the success path.
func tryAcquireLeak(m *lock.Manager, tx lock.TxID) bool {
	if err := m.TryAcquire(tx, lock.WU, op.WriteOp("x", 1)); err != nil { // want A1
		return false
	}
	return true
}

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ok bool
}

// earlyReturnHoldsMutex forgets Unlock on the early return.
func (g *guarded) earlyReturnHoldsMutex() bool {
	g.mu.Lock() // want A1
	if g.ok {
		return true
	}
	g.mu.Unlock()
	return false
}

// rUnlockMismatch pairs RLock with Unlock, leaving the read lock held.
func (g *guarded) rUnlockMismatch() bool {
	g.rw.RLock() // want A1
	v := g.ok
	g.rw.Unlock()
	return v
}

// leakInOneSwitchCase releases in only one arm.
func (g *guarded) leakInOneSwitchCase(n int) int {
	g.mu.Lock() // want A1
	switch n {
	case 0:
		g.mu.Unlock()
		return 0
	default:
		return n
	}
}
