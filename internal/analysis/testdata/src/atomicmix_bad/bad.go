// Package atomicmix_bad holds the A9 violations: fields and globals
// accessed both through sync/atomic and plainly.
package atomicmix_bad

import "sync/atomic"

type counter struct {
	n     int64
	other int64
}

// bump is the atomic side: it marks counter.n as an atomic field
// module-wide.
func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

// read is the racy side: a plain load of an atomically written field.
func (c *counter) read() int64 {
	return c.n // want A9
}

// reset is a racy plain store.
func (c *counter) reset() {
	c.n = 0 // want A9
}

// hits is a package-level variable with the same mixed pattern.
var hits uint64

func recordHit() {
	atomic.AddUint64(&hits, 1)
}

func hitCount() uint64 {
	return hits // want A9
}
