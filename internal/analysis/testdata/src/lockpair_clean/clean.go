// Package lockpair_clean exercises every release idiom rule A1 must
// accept: defer-release, error-branch release, loop acquire/release,
// mid-function mutex pairing, select shutdown paths, and the ignore
// directive for locks that legitimately outlive the function.
package lockpair_clean

import (
	"sync"

	"esr/internal/lock"
	"esr/internal/op"
)

// deferRelease is the query-path idiom: one defer covers every return.
func deferRelease(m *lock.Manager, tx lock.TxID, objs []string) error {
	defer m.ReleaseAll(tx)
	for _, obj := range objs {
		if err := m.Acquire(tx, lock.RQ, op.ReadOp(obj)); err != nil {
			return err
		}
	}
	return nil
}

// errorBranchRelease is the apply-path idiom: explicit release on both
// the error branch and the success path.
func errorBranchRelease(m *lock.Manager, tx lock.TxID, objs []string) error {
	for _, obj := range objs {
		if err := m.Acquire(tx, lock.WU, op.WriteOp(obj, 1)); err != nil {
			m.ReleaseAll(tx)
			return err
		}
	}
	m.ReleaseAll(tx)
	return nil
}

// loopAcquireRelease pairs within each iteration.
func loopAcquireRelease(m *lock.Manager, tx lock.TxID, objs []string) {
	for _, obj := range objs {
		if err := m.Acquire(tx, lock.RU, op.ReadOp(obj)); err != nil {
			m.ReleaseAll(tx)
			continue
		}
		m.ReleaseAll(tx)
	}
}

type guarded struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val int
}

// mutexDefer is the standard defer pairing.
func (g *guarded) mutexDefer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// mutexMidFunction releases before every return, including inside a
// switch.
func (g *guarded) mutexMidFunction(n int) int {
	g.mu.Lock()
	v := g.val
	g.mu.Unlock()
	switch {
	case n > 0:
		g.mu.Lock()
		g.val = n
		g.mu.Unlock()
		return n
	default:
		return v
	}
}

// rwPairing pairs RLock with RUnlock and Lock with Unlock separately.
func (g *guarded) rwPairing() int {
	g.rw.RLock()
	v := g.val
	g.rw.RUnlock()
	g.rw.Lock()
	g.val = v + 1
	g.rw.Unlock()
	return v
}

// deferredClosure releases inside a deferred function literal.
func (g *guarded) deferredClosure() int {
	g.mu.Lock()
	defer func() {
		g.mu.Unlock()
	}()
	return g.val
}

// selectShutdown releases on each select arm before returning.
func selectShutdown(m *lock.Manager, tx lock.TxID, done <-chan struct{}) {
	if err := m.Acquire(tx, lock.WU, op.WriteOp("x", 1)); err != nil {
		m.ReleaseAll(tx)
		return
	}
	select {
	case <-done:
		m.ReleaseAll(tx)
		return
	default:
		m.ReleaseAll(tx)
	}
}

// escapeDirective models a 2PC prepare handler whose locks are released
// by a later message; the directive documents and suppresses it.
func escapeDirective(m *lock.Manager, tx lock.TxID) error {
	//esrvet:ignore A1 released by the paired commit/abort handler
	return m.Acquire(tx, lock.WU, op.WriteOp("x", 1))
}
