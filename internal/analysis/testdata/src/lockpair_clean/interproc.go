// Interprocedural A1 non-violations: acquisition and release split
// across helpers, which the summary-based analysis pairs up.
package lockpair_clean

import "sync"

func lockHelper(mu *sync.Mutex)   { mu.Lock() }
func unlockHelper(mu *sync.Mutex) { mu.Unlock() }

// helperPair: a helper acquires, the caller releases directly.
func helperPair(mu *sync.Mutex) {
	lockHelper(mu)
	mu.Unlock()
}

// helperBothSides: both halves live in helpers.
func helperBothSides(mu *sync.Mutex) {
	lockHelper(mu)
	unlockHelper(mu)
}

// deferHelper releases through a deferred helper call.
func deferHelper(mu *sync.Mutex) {
	lockHelper(mu)
	defer unlockHelper(mu)
}

// throughThree threads the lock down a three-call chain and back.
func throughThree(mu *sync.Mutex) {
	acquire3(mu)
	defer unlockHelper(mu)
}

func acquire3(mu *sync.Mutex) { acquire2(mu) }
func acquire2(mu *sync.Mutex) { lockHelper(mu) }

// splitGuarded is the receiver-rooted version of the same split.
type splitGuarded struct {
	mu sync.Mutex
	n  int
}

func (g *splitGuarded) lock()   { g.mu.Lock() }
func (g *splitGuarded) unlock() { g.mu.Unlock() }

func (g *splitGuarded) incr() {
	g.lock()
	g.n++
	g.unlock()
}
