// Package stripeaccess_clean exercises every access idiom rule A7 must
// accept: the constructor building the stripe array, resolution through
// the stripe accessor, whole-store scans through forEachStripe, and the
// ignore directive for a deliberate direct read.
package stripeaccess_clean

import "sync"

// Store mirrors the sharded single-version store: objects hash to
// stripes, each with its own mutex and cell map.
type Store struct {
	stripes []*storeStripe
}

type storeStripe struct {
	mu    sync.RWMutex
	cells map[string]int64
}

// NewStore builds the stripe array — constructors are allowlisted.
func NewStore(n int) *Store {
	s := &Store{stripes: make([]*storeStripe, n)}
	for i := range s.stripes {
		s.stripes[i] = &storeStripe{cells: make(map[string]int64)}
	}
	return s
}

// stripe is the accessor every method resolves objects through.
func (s *Store) stripe(object string) *storeStripe {
	h := uint32(2166136261)
	for i := 0; i < len(object); i++ {
		h ^= uint32(object[i])
		h *= 16777619
	}
	return s.stripes[int(h%uint32(len(s.stripes)))]
}

// forEachStripe visits every stripe in slot order.
func (s *Store) forEachStripe(f func(*storeStripe)) {
	for _, st := range s.stripes {
		f(st)
	}
}

// get resolves through the accessor, the idiom A7 enforces.
func get(s *Store, object string) int64 {
	st := s.stripe(object)
	st.mu.RLock()
	v := st.cells[object]
	st.mu.RUnlock()
	return v
}

// objects scans through forEachStripe rather than ranging the field.
func objects(s *Store) []string {
	var out []string
	s.forEachStripe(func(st *storeStripe) {
		st.mu.RLock()
		for obj := range st.cells {
			out = append(out, obj)
		}
		st.mu.RUnlock()
	})
	return out
}

// stripeCount documents a deliberate direct read with the ignore
// directive, the sanctioned escape hatch.
func stripeCount(s *Store) int {
	return len(s.stripes) //esrvet:ignore A7 stripe count only, no cell access
}
