// Shard-routing half of rule A7: every access idiom the rule must
// accept — constructors building the per-shard arrays, resolution
// through the shard accessors, whole-cluster scans, per-site lookups
// that stop short of picking a domain, and the ignore directive.
package stripeaccess_clean

// SiteID mirrors clock.SiteID.
type SiteID uint32

// Cluster mirrors the transaction core's per-shard layout.
type Cluster struct {
	seqs []int
	wals map[SiteID][]int
	out  map[SiteID]map[SiteID][]int
}

// New builds the per-shard arrays — constructors are allowlisted.
func New(sites, shards int) *Cluster {
	c := &Cluster{
		seqs: make([]int, shards),
		wals: make(map[SiteID][]int),
		out:  make(map[SiteID]map[SiteID][]int),
	}
	for s := range c.seqs {
		c.seqs[s] = s
	}
	for s := SiteID(1); s <= SiteID(sites); s++ {
		c.wals[s] = make([]int, shards)
		ls := make(map[SiteID][]int)
		for t := SiteID(1); t <= SiteID(sites); t++ {
			ls[t] = make([]int, shards)
		}
		c.out[s] = ls
	}
	return c
}

// shardSeq, walFor, and linkFor are the accessors every other function
// resolves shard slots through.
func (c *Cluster) shardSeq(shard int) int { return c.seqs[shard] }

func (c *Cluster) walFor(id SiteID, shard int) int { return c.wals[id][shard] }

func (c *Cluster) linkFor(from, to SiteID, shard int) int { return c.out[from][to][shard] }

// forEachShard visits every ordering domain in slot order.
func (c *Cluster) forEachShard(fn func(shard int)) {
	for s := range c.seqs {
		fn(s)
	}
}

// nextSeq resolves through the accessor, the idiom A7 enforces.
func nextSeq(c *Cluster, shard int) int { return c.shardSeq(shard) }

// closeSite hands off a whole per-site slice without picking a domain;
// depth-one site lookups are legal.
func closeSite(c *Cluster, id SiteID) []int { return c.wals[id] }

// domainCount reads the field without indexing it at all.
func domainCount(c *Cluster) int { return len(c.seqs) }

// firstDomainSeq documents a deliberate direct read with the ignore
// directive, the sanctioned escape hatch.
func firstDomainSeq(c *Cluster) int {
	return c.seqs[0] //esrvet:ignore A7 shard 0 doubles as the legacy single-domain sequencer here
}
