// Package lockheldio_bad holds the A8 violations: blocking operations
// performed while a lock may be held, including interprocedurally
// through call chains.
package lockheldio_bad

import (
	"os"
	"sync"
	"time"

	"esr/internal/clock"
	"esr/internal/lock"
	"esr/internal/network"
	"esr/internal/op"
)

// sleepUnderMutex sleeps inside the critical section.
func sleepUnderMutex(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond) // want A8
	mu.Unlock()
}

// callUnderManager performs a transport round-trip while the lock
// manager holds the transaction's locks.
func callUnderManager(m *lock.Manager, t network.Transport, tx lock.TxID) error {
	if err := m.Acquire(tx, lock.WU, op.WriteOp("x", 1)); err != nil {
		return err
	}
	_, err := t.Call(clock.SiteID(1), clock.SiteID(2), nil) // want A8
	m.ReleaseAll(tx)
	return err
}

// fsyncUnderLock fsyncs while holding the stripe mutex.
func fsyncUnderLock(mu *sync.Mutex, f *os.File) error {
	mu.Lock()
	defer mu.Unlock()
	return f.Sync() // want A8
}

// unbufferedSendUnderLock sends on an unbuffered channel — a rendezvous
// that waits for a receiver — inside the critical section.
func unbufferedSendUnderLock(mu *sync.Mutex) {
	ch := make(chan int)
	go func() { <-ch }()
	mu.Lock()
	ch <- 1 // want A8
	mu.Unlock()
}

// acquireHelper hands the lock back to its caller (clean under A1: all
// callers release), setting up the interprocedural cases below.
func acquireHelper(mu *sync.Mutex) {
	mu.Lock()
}

// sleeper blocks; its summary carries the witness.
func sleeper() {
	time.Sleep(time.Millisecond)
}

// blockThroughCall: the lock arrives via a helper's summary and the
// blocking arrives via another's — neither is visible in this body.
func blockThroughCall(mu *sync.Mutex) {
	acquireHelper(mu)
	sleeper() // want A8
	mu.Unlock()
}

// sendUnderHeldLock: the transport send happens two frames below the
// acquisition.
func sendUnderHeldLock(mu *sync.Mutex, t network.Transport) {
	acquireHelper(mu)
	relay(t) // want A8
	mu.Unlock()
}

func relay(t network.Transport) {
	_ = t.Send(clock.SiteID(1), clock.SiteID(2), nil)
}
