// Package determinism_bad holds the A4 violations: wall-clock reads
// and global-source randomness inside a determinism-critical package.
package determinism_bad

import (
	"math/rand"
	"time"
)

// wallClockBranch makes simulation behaviour depend on when it runs.
func wallClockBranch(deadline time.Time) bool {
	return time.Now().After(deadline) // want A4
}

// wallClockMeasure should go through internal/stopwatch.
func wallClockMeasure() time.Duration {
	t0 := time.Now()          // want A4
	return time.Since(t0) / 2 // want A4
}

// globalRandomness draws from the process-global source, which is
// shared, lock-contended, and reseeded differently on every run.
func globalRandomness(n int) []int {
	out := make([]int, 0, n+2)
	for i := 0; i < n; i++ {
		out = append(out, rand.Intn(100)) // want A4
	}
	out = append(out, int(rand.Int63()))       // want A4
	out = append(out, int(rand.Float64()*100)) // want A4
	rand.Shuffle(len(out), func(i, j int) {    // want A4
		out[i], out[j] = out[j], out[i]
	})
	return out
}
