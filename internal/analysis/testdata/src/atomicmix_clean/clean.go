// Package atomicmix_clean holds the A9 non-violations: consistently
// atomic access, typed atomics, pre-publication initialization, and
// same-named fields on unrelated types.
package atomicmix_clean

import "sync/atomic"

type counter struct {
	n     int64
	typed atomic.Int64
}

// Every access to counter.n goes through sync/atomic.
func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

// The typed atomic needs no rule: its plain value is inaccessible.
func (c *counter) bumpTyped() {
	c.typed.Add(1)
}

// newCounter names n in a composite literal: initialization before the
// value is shared, not a racy access.
func newCounter() *counter {
	return &counter{n: 0}
}

// gauge has its own field called n, never touched atomically; object
// identity keeps it out of counter.n's blast radius.
type gauge struct {
	n int64
}

func (g *gauge) bump() {
	g.n++
}
