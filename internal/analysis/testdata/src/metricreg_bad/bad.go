// Package metricreg_bad violates rule A6: stages that emit trace
// events while never touching a metrics instrument, so the stage shows
// up in the event log but is invisible to /metrics and esrtop.
package metricreg_bad

import (
	"time"

	"esr/internal/trace"
)

// applyWithoutCount traces the apply but the apply counter is nowhere:
// the site's apply rate silently reads zero.
func applyWithoutCount(r *trace.Ring, site int) {
	r.RecordMSet(trace.Apply, site, "et1.1", 0x42, "") // want A6
}

// holdWithoutGauge traces the hold-back with formatting but records no
// depth or hold counter.
func holdWithoutGauge(r *trace.Ring, site, seq int) {
	r.RecordMSetf(trace.Hold, site, "et1.2", 0x43, "seq=%d", seq) // want A6
}

// queryWithoutBudget prices a read in the event log only; the ε-budget
// gauge never moves.
func queryWithoutBudget(r *trace.Ring, site int, cost int) {
	if cost > 0 {
		r.Recordf(trace.QueryCharged, site, "et1.3", "cost=%d", cost) // want A6
	}
}

// spanWithoutHistogram traces the fsync's duration as a span but never
// observes a latency histogram: the leg appears in timelines while the
// p99 reads empty.
func spanWithoutHistogram(r *trace.Ring, site int, start time.Time) {
	r.RecordSpan(trace.WALFsync, site, "et1.4", 0x44, start, "") // want A6
}
