// Package determinism_clean shows the randomness and timing idioms A4
// must accept inside a determinism-critical package: explicitly seeded
// generators, methods on generator state, durations, sleeps, and
// measurement through internal/stopwatch.
package determinism_clean

import (
	"math/rand"
	"time"

	"esr/internal/stopwatch"
)

// seededWorkload draws everything from an explicitly seeded generator.
func seededWorkload(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.5, 1, 64)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			out = append(out, rng.Intn(100))
		} else {
			out = append(out, int(zipf.Uint64()))
		}
	}
	return out
}

// pacedRun uses durations and sleeps (legal: they delay, they do not
// branch on the wall clock) and measures through the stopwatch.
func pacedRun(pace time.Duration, steps int) time.Duration {
	sw := stopwatch.Start()
	for i := 0; i < steps; i++ {
		time.Sleep(pace)
	}
	return sw.Elapsed()
}
