// Package querylock_bad violates rule A11: query-path functions that
// reach a lock.Manager acquisition, directly or through a helper.
package querylock_bad

import (
	"esr/internal/lock"
	"esr/internal/op"
)

// Engine mirrors a method engine with a lock manager per site.
type Engine struct {
	locks *lock.Manager
	store map[string]int64
}

// Query acquires a read lock directly — the pre-refactor RQ pattern the
// unified read path removed.
func (e *Engine) Query(objects []string) (map[string]int64, error) {
	tx := lock.TxID(1)
	vals := make(map[string]int64, len(objects))
	for _, obj := range objects {
		if err := e.locks.Acquire(tx, lock.RQ, op.ReadOp(obj)); err != nil { // want A11
			e.locks.ReleaseAll(tx)
			return nil, err
		}
		vals[obj] = e.store[obj]
	}
	e.locks.ReleaseAll(tx)
	return vals, nil
}

// queryConservative is a lowercase query-path helper that falls back to
// an RU acquisition instead of draining.
func (e *Engine) queryConservative(obj string) (int64, error) {
	tx := lock.TxID(2)
	if err := e.locks.TryAcquire(tx, lock.RU, op.ReadOp(obj)); err != nil { // want A11
		return 0, err
	}
	v := e.store[obj]
	e.locks.ReleaseAll(tx)
	return v, nil
}

// QuerySpec hides the acquisition one call deep: reachability through
// the static call graph must still find it.
func (e *Engine) QuerySpec(objects []string) (map[string]int64, error) {
	vals := make(map[string]int64, len(objects))
	for _, obj := range objects {
		v, err := e.lockedRead(obj)
		if err != nil {
			return nil, err
		}
		vals[obj] = v
	}
	return vals, nil
}

// lockedRead is not itself a query root; it is flagged because a query
// path reaches it.
func (e *Engine) lockedRead(obj string) (int64, error) {
	tx := lock.TxID(3)
	if err := e.locks.Acquire(tx, lock.RQ, op.ReadOp(obj)); err != nil { // want A11
		return 0, err
	}
	v := e.store[obj]
	e.locks.ReleaseAll(tx)
	return v, nil
}
