// Package goleak_bad holds the A5 violations: goroutines with no
// visible join or cancellation anywhere in their call shape.
package goleak_bad

import "time"

type spinner struct {
	n    int
	stop bool // a plain flag is not a visible cancellation signal
}

// leakLoop polls a boolean forever; nothing joins or cancels it.
func (s *spinner) leakLoop() {
	go func() { // want A5
		for !s.stop {
			s.n++
			time.Sleep(time.Millisecond)
		}
	}()
}

// leakMethod spawns a named method that also has no exit signal.
func (s *spinner) leakMethod() {
	go s.spin() // want A5
}

func (s *spinner) spin() {
	for {
		s.n++
		time.Sleep(time.Millisecond)
	}
}

// leakSend spawns a goroutine that only ever sends; a send can block
// forever but is not a cancellation path.
func leakSend(out chan<- int) {
	go func() { // want A5
		for i := 0; ; i++ {
			out <- i
		}
	}()
}
