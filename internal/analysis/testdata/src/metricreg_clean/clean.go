// Package metricreg_clean exercises every pairing idiom rule A6 must
// accept: a counter increment beside the trace call, a histogram
// observation through a struct field, lag tracking, a function with no
// trace events at all, and the ignore directive for an emit that is
// deliberately metrics-free.
package metricreg_clean

import (
	"time"

	"esr/internal/metrics"
	"esr/internal/trace"
)

// pipeline bundles the instruments a stage writes, the shape the real
// chassis uses.
type pipeline struct {
	applies *metrics.Counter
	waitSec *metrics.Histogram
}

// counterBesideTrace is the canonical pairing: the event and the count
// move together.
func counterBesideTrace(r *trace.Ring, p *pipeline, site int) {
	p.applies.Inc()
	r.RecordMSet(trace.Apply, site, "et1.1", 0x42, "")
}

// histogramThroughField observes through a field selector rather than a
// local, which must also count as touching the metrics layer.
func histogramThroughField(r *trace.Ring, p *pipeline, site int, d time.Duration) {
	r.Recordf(trace.Hold, site, "et1.2", "seq=%d", 7)
	p.waitSec.Observe(int64(d))
}

// lagCounts pairs the commit event with the propagation-lag tracker.
func lagCounts(r *trace.Ring, l *metrics.Lag, site int) {
	l.Commit(0x42)
	r.RecordMSetf(trace.Commit, site, "et1.3", 0x42, "ops=%d", 1)
}

// noTraceNoObligation emits nothing, so A6 demands nothing — even
// though it also touches no metrics.
func noTraceNoObligation(events []trace.Event) int {
	return len(events)
}

// dumpIsNotAnEmit reads the ring without recording; readers have no
// pairing obligation.
func dumpIsNotAnEmit(r *trace.Ring) []trace.Event {
	return r.Snapshot()
}

// deliberatelyUnpaired documents a metrics-free emit with the ignore
// directive, the sanctioned escape hatch.
func deliberatelyUnpaired(r *trace.Ring, site int) {
	r.Record(trace.Receive, site, "et1.4", "debug-only probe") //esrvet:ignore A6 one-off debugging event, no steady-state series wanted
}

// spanBesideHistogram pairs a duration span with the histogram that
// makes the same leg visible in /metrics — the idiom every RecordSpan
// call site must follow.
func spanBesideHistogram(r *trace.Ring, p *pipeline, site int, start time.Time) {
	p.waitSec.Observe(int64(time.Since(start)))
	r.RecordSpan(trace.WALFsync, site, "et1.5", 0x45, start, "")
}
