// Package copylock_bad holds the A2 violations: every way a mutex (or
// a struct carrying one, like lock.Manager) gets duplicated by value.
package copylock_bad

import (
	"fmt"
	"sync"

	"esr/internal/lock"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// embedded carries the lock transitively.
type embedded struct {
	inner counter
}

// valueParam copies the caller's mutex into the frame.
func valueParam(c counter) int { // want A2
	return c.n
}

// valueReceiver copies the receiver's mutex on every call.
func (c counter) valueReceiver() int { // want A2
	return c.n
}

// valueResult copies the lock out on return.
func valueResult(c *counter) counter { // want A2
	return *c
}

// managerByValue copies lock.Manager (mutex, cond, maps).
func managerByValue(m lock.Manager) string { // want A2
	return m.Table().String()
}

// derefCopy duplicates an existing value through its pointer.
func derefCopy(e *embedded) int {
	local := *e // want A2
	return local.inner.n
}

// rangeCopy duplicates each element into the loop variable.
func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want A2
		total += c.n
	}
	return total
}

// callArgCopy passes the lock by value through an interface parameter,
// invisible to signature checks.
func callArgCopy(c *counter) {
	fmt.Println(*c) // want A2
}
