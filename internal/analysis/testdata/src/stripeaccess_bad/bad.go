// Package stripeaccess_bad violates rule A7: code that indexes the
// sharded stores' stripe arrays by hand, duplicating the hash-to-stripe
// mapping the accessors single-source.
package stripeaccess_bad

import "sync"

// MVStore mirrors the sharded multi-version store.
type MVStore struct {
	stripes []*mvStripe
}

type mvStripe struct {
	mu   sync.RWMutex
	objs map[string][]int64
}

// NewMVStore builds the stripe array — constructors are allowlisted.
func NewMVStore(n int) *MVStore {
	m := &MVStore{stripes: make([]*mvStripe, n)}
	for i := range m.stripes {
		m.stripes[i] = &mvStripe{objs: make(map[string][]int64)}
	}
	return m
}

// stripe is the accessor readLatest should have used.
func (m *MVStore) stripe(object string) *mvStripe {
	h := uint32(2166136261)
	for i := 0; i < len(object); i++ {
		h ^= uint32(object[i])
		h *= 16777619
	}
	return m.stripes[int(h%uint32(len(m.stripes)))]
}

// readLatest resolves the stripe by hand with a different hash than the
// accessor: reads and writes of the same object land on different
// stripes.
func readLatest(m *MVStore, object string) int64 {
	st := m.stripes[len(object)%len(m.stripes)] // want A7 A7
	st.mu.RLock()
	defer st.mu.RUnlock()
	versions := st.objs[object]
	if len(versions) == 0 {
		return 0
	}
	return versions[len(versions)-1]
}

// countVersions ranges the field directly instead of going through
// forEachStripe.
func countVersions(m *MVStore) int {
	n := 0
	for _, st := range m.stripes { // want A7
		st.mu.RLock()
		for _, vs := range st.objs {
			n += len(vs)
		}
		st.mu.RUnlock()
	}
	return n
}
