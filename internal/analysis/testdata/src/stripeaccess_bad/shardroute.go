// Shard-routing half of rule A7: code that resolves the cluster's
// per-shard ordering state by hand.  A shard slot picked with a local
// recomputation routes an ET into another domain's total order —
// duplicate sequence numbers in one domain, permanent gaps in another.
package stripeaccess_bad

// SiteID mirrors clock.SiteID.
type SiteID uint32

// Cluster mirrors the transaction core's per-shard layout: sequencers
// indexed by shard, inbound queues keyed by site then shard, and the
// link cube keyed (from, to, shard).
type Cluster struct {
	seqs []int
	inQ  map[SiteID][]int
	out  map[SiteID]map[SiteID][]int
}

// New builds the per-shard arrays — constructors are allowlisted.
func New(sites, shards int) *Cluster {
	c := &Cluster{
		seqs: make([]int, shards),
		inQ:  make(map[SiteID][]int),
		out:  make(map[SiteID]map[SiteID][]int),
	}
	for s := SiteID(1); s <= SiteID(sites); s++ {
		c.inQ[s] = make([]int, shards)
		ls := make(map[SiteID][]int)
		for t := SiteID(1); t <= SiteID(sites); t++ {
			ls[t] = make([]int, shards)
		}
		c.out[s] = ls
	}
	return c
}

// shardSeq is the accessor routeByHand should have used.
func (c *Cluster) shardSeq(shard int) int { return c.seqs[shard] }

// routeByHand resolves a shard slot with a different key-to-domain
// mapping than the accessor: the ET lands in the wrong total order.
func routeByHand(c *Cluster, object string) int {
	return c.seqs[len(object)%len(c.seqs)] // want A7
}

// drainShardSlot reaches past the legal per-site lookup into one
// domain's queue slot.
func drainShardSlot(c *Cluster, id SiteID, sh int) int {
	return c.inQ[id][sh] // want A7
}

// sendOnLink indexes the link cube all the way down to a shard slot.
func sendOnLink(c *Cluster, from, to SiteID, sh int) int {
	return c.out[from][to][sh] // want A7
}
