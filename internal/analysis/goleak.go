package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak is rule A5: goroutines spawned in the transport and
// stable-queue layers must have a visible join or cancellation — a
// sync.WaitGroup.Done, a receive from a done/kick channel (including
// select cases and channel ranges), or a ctx.Done() check — reachable
// from the spawned function.  These two packages run one pump goroutine
// per (site, link); a pump with no termination signal outlives Close,
// keeps the queue file open, and turns every simulation into a slow
// leak the race detector cannot see.
var GoroutineLeak = &Analyzer{
	Rule: "A5",
	Name: "goleak",
	Doc:  "goroutines in internal/network and internal/queue need a visible join or cancellation",
	Run:  runGoroutineLeak,
}

// leakCheckedPackages are the import-path suffixes A5 applies to.
var leakCheckedPackages = []string{
	"internal/network",
	"internal/queue",
}

func runGoroutineLeak(p *Package) []Diagnostic {
	applies := false
	for _, suffix := range leakCheckedPackages {
		if strings.HasSuffix(p.Path, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	decls := packageFuncDecls(p)
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasExit(p, decls, gs.Call) {
				diags = append(diags, p.diag("A5", gs,
					"goroutine has no visible join or cancellation (want a sync.WaitGroup.Done, a done-channel receive, or ctx.Done() reachable from its body)"))
			}
			return true
		})
	}
	return diags
}

// goroutineHasExit resolves the spawned call to a body (function
// literal or same-package declaration) and searches it — transitively
// through same-package callees — for join/cancellation evidence.
func goroutineHasExit(p *Package, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) bool {
	var body *ast.BlockStmt
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		var id *ast.Ident
		switch f := fun.(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		}
		if id == nil {
			return false
		}
		fd, ok := decls[p.Info.Uses[id]]
		if !ok {
			return false // cross-package target: nothing visible to check
		}
		body = fd.Body
	}
	visited := make(map[ast.Node]bool)
	return hasExitEvidence(p, decls, body, visited)
}

func hasExitEvidence(p *Package, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt, visited map[ast.Node]bool) bool {
	if visited[body] {
		return false
	}
	visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// `<-ch` — a blocking receive doubles as a cancellation signal
			// in the done-channel idiom (select cases land here too).
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// `for m := range ch` exits when the channel closes.
			if t := p.Info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isExitCall(p, x) {
				found = true
				return false
			}
			// Follow same-package callees (e.g. go d.run() where run's
			// helper does the select).
			var id *ast.Ident
			switch f := x.Fun.(type) {
			case *ast.Ident:
				id = f
			case *ast.SelectorExpr:
				id = f.Sel
			}
			if id != nil {
				if fd, ok := decls[p.Info.Uses[id]]; ok {
					if hasExitEvidence(p, decls, fd.Body, visited) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isExitCall recognizes sync.WaitGroup.Done and context.Context.Done.
func isExitCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Name() != "Done" {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		return methodOnNamed(obj, "WaitGroup")
	case "context":
		return true
	}
	return false
}
