package analysis

// LockHeldBlocking is rule A8: no blocking operation while a lock may
// be held.  Blocking operations are the network.Transport methods
// Send/Call/SendBatch (classified by method set, so interface dispatch
// is caught), (*os.File).Sync, time.Sleep, and send/receive on channels
// the module only ever creates unbuffered (operations inside a select
// with a default clause are non-blocking and exempt).  Locks are
// lock.Manager acquisitions and sync.Mutex/RWMutex stripe mutexes.
//
// The rule is interprocedural both ways: a function that blocks taints
// every caller (its summary carries the root-cause witness), and a lock
// a callee leaves held — even one rooted in the callee's locals, which
// propagates as an opaque hold — poisons blocking sites after the call
// returns.  This is exactly the 2PC shape: the participant handler
// acquires its site's lock manager during prepare, so every subsequent
// transport Call the coordinator makes happens with a remote lock held;
// cross-shard latency (or a deadlock, once ordering domains shard) then
// sits inside the lock's critical section.
//
// Havoc: an unknown callee (interface dispatch, function value) is
// assumed not to block — except the explicitly classified primitives
// above, which need no body to be recognized.  That is the pragmatic
// direction; the sound one would flag every dynamic call under a lock,
// drowning the signal.
var LockHeldBlocking = &Analyzer{
	Rule:      "A8",
	Name:      "lockheld",
	Doc:       "no transport I/O, fsync, unbuffered channel ops, or sleeps while a lock may be held",
	RunModule: runLockHeld,
}

func runLockHeld(m *Module) []Diagnostic {
	_, a8 := m.lockFlowResults()
	return a8
}
