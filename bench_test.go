// Benchmarks mirroring the experiment index in DESIGN.md: one bench
// family per paper table (T1–T3) and per quantitative experiment
// (E1–E10).  `go test -bench=. -benchmem` regenerates the performance
// side of EXPERIMENTS.md; the esrbench binary prints the corresponding
// tables.
package esr

import (
	"fmt"
	"testing"
	"time"

	"esr/internal/clock"
	"esr/internal/commu"
	"esr/internal/compe"
	"esr/internal/core"
	"esr/internal/divergence"
	"esr/internal/et"
	"esr/internal/history"
	"esr/internal/lock"
	"esr/internal/merge"
	"esr/internal/network"
	"esr/internal/op"
	"esr/internal/ordup"
	"esr/internal/sim"
)

// --- T1: method traits (Table 1) ---

func BenchmarkT1Traits(b *testing.B) {
	e, err := sim.NewEngine(sim.COMMU, 1, network.Config{Seed: 1}, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Traits().Name == "" {
			b.Fatal("empty traits")
		}
	}
}

// --- T2/T3: lock compatibility tables ---

func BenchmarkT2CompatibilityORDUP(b *testing.B) {
	benchCompat(b, lock.ORDUP)
}

func BenchmarkT3CompatibilityCOMMU(b *testing.B) {
	benchCompat(b, lock.COMMU)
}

func benchCompat(b *testing.B, table lock.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, h := range lock.Modes {
			for _, r := range lock.Modes {
				_ = table.Compatibility(h, r)
			}
		}
	}
}

// --- E1: update path, per method and replication degree ---

func BenchmarkE1Update(b *testing.B) {
	kinds := []sim.EngineKind{sim.COMMU, sim.ORDUPSeq, sim.TwoPC, sim.QuorumMaj}
	for _, kind := range kinds {
		for _, n := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/replicas=%d", kind, n), func(b *testing.B) {
				e, err := sim.NewEngine(kind, n, network.Config{Seed: 1}, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Update(1, []op.Op{op.IncOp("x", 1)}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := e.Cluster().Quiesce(60 * time.Second); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// --- E2: query path per ε under concurrent updates ---

func BenchmarkE2Query(b *testing.B) {
	for _, eps := range []divergence.Limit{0, 2, divergence.Unlimited} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			e, err := sim.NewEngine(sim.ORDUPSeq, 3, network.Config{Seed: 1}, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			stop := make(chan struct{})
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					e.Update(1, []op.Op{op.IncOp("x", 1), op.IncOp("y", 1)})
					time.Sleep(200 * time.Microsecond)
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(2, []string{"x", "y"}, eps); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			if err := e.Cluster().Quiesce(60 * time.Second); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- E3: the priced (divergence-accounted) COMMU read ---

func BenchmarkE3AccountedRead(b *testing.B) {
	e, err := sim.NewEngine(sim.COMMU, 3, network.Config{Seed: 1}, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Update(1, []op.Op{op.IncOp("x", 1)})
	e.Cluster().Quiesce(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(2, []string{"x"}, divergence.Limit(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: propagate-and-converge cycle per method ---

func BenchmarkE4Convergence(b *testing.B) {
	for _, kind := range sim.AllMethods {
		b.Run(string(kind), func(b *testing.B) {
			e, err := sim.NewEngine(kind, 4, network.Config{Seed: 1}, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			mkOp := func(i int) op.Op {
				if kind == sim.RITUSV {
					return op.WriteOp("x", int64(i))
				}
				return op.IncOp("x", 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Update(1, []op.Op{mkOp(i)}); err != nil {
					b.Fatal(err)
				}
				if err := e.Cluster().Quiesce(60 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: partition/heal reconciliation cycle ---

func BenchmarkE5HealReconcile(b *testing.B) {
	e, err := sim.NewEngine(sim.COMMU, 4, network.Config{Seed: 1}, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	c := e.Cluster()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Net.Partition([]clock.SiteID{1, 2, core.SequencerSite}, []clock.SiteID{3, 4})
		e.Update(1, []op.Op{op.IncOp("x", 1)})
		e.Update(3, []op.Op{op.IncOp("x", 1)})
		c.Net.Heal()
		if err := c.Quiesce(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: throttled COMMU update ---

func BenchmarkE6ThrottledUpdate(b *testing.B) {
	for _, limit := range []int{0, 4} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			e, err := sim.NewEngine(sim.COMMU, 3, network.Config{Seed: 1}, sim.Options{CounterLimit: limit})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Update(1, []op.Op{op.IncOp("x", 1)}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			e.Cluster().Quiesce(60 * time.Second)
		})
	}
}

// --- E7: RITU multi-version reads, stable vs ε-paid fresh ---

func BenchmarkE7MVRead(b *testing.B) {
	for _, eps := range []divergence.Limit{0, 1} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			e, err := sim.NewEngine(sim.RITUMV, 3, network.Config{Seed: 1}, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for i := 0; i < 10; i++ {
				e.Update(1, []op.Op{op.WriteOp("x", int64(i))})
			}
			e.Cluster().Quiesce(10 * time.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(2, []string{"x"}, eps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: abort + compensation, commutative vs general discipline ---

func BenchmarkE8Compensation(b *testing.B) {
	for _, mode := range []compe.Mode{compe.Commutative, compe.General} {
		b.Run(mode.String(), func(b *testing.B) {
			e, err := compe.New(compe.Config{
				Core: core.Config{Sites: 2, Net: network.Config{Seed: 1}},
				Mode: mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := e.Begin(1, []op.Op{op.IncOp("x", 1)})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Abort(id); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := e.Cluster().Quiesce(60 * time.Second); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- E9: ORDUP apply-everywhere visibility per ordering source ---

func BenchmarkE9Visibility(b *testing.B) {
	configs := []struct {
		name string
		kind sim.EngineKind
	}{
		{"sequencer", sim.ORDUPSeq},
		{"lamport", sim.ORDUPLamport},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			e, err := sim.NewEngine(cfg.kind, 3, network.Config{Seed: 1}, sim.Options{Heartbeat: 200 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			oe := e.(*ordup.Engine)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := oe.Update(1, []op.Op{op.IncOp("x", 1)}); err != nil {
					b.Fatal(err)
				}
				for oe.Outstanding() > 0 {
					time.Sleep(20 * time.Microsecond)
				}
			}
		})
	}
}

// --- E10: the correctness checkers themselves ---

func BenchmarkE10Checkers(b *testing.B) {
	events := []history.Event{
		{ET: 1, Class: history.Update, Op: op.ReadOp("a")},
		{ET: 1, Class: history.Update, Op: op.WriteOp("b", 1)},
		{ET: 2, Class: history.Update, Op: op.WriteOp("b", 1)},
		{ET: 3, Class: history.Query, Op: op.ReadOp("a")},
		{ET: 2, Class: history.Update, Op: op.WriteOp("a", 1)},
		{ET: 3, Class: history.Query, Op: op.ReadOp("b")},
	}
	b.Run("IsSerializable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if history.IsSerializable(events) {
				b.Fatal("paper log (1) must not be SR")
			}
		}
	})
	b.Run("IsEpsilonSerial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !history.IsEpsilonSerial(events) {
				b.Fatal("paper log (1) must be ε-serial")
			}
		}
	})
	b.Run("Overlap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(history.Overlap(events, 3)) != 1 {
				b.Fatal("overlap of Q3 must be {U2}")
			}
		}
	})
}

// --- E11: off-line log merge cost ---

func BenchmarkE11LogMerge(b *testing.B) {
	mkLog := func(side clock.SiteID, n int) []merge.Entry {
		out := make([]merge.Entry, n)
		for i := range out {
			out[i] = merge.Entry{
				ET:  et.MakeID(side, uint64(i+1)),
				TS:  clock.Timestamp{Time: uint64(i*2) + uint64(side), Site: side},
				Ops: []op.Op{op.IncOp("x", 1)},
			}
		}
		return out
	}
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			a, c := mkLog(1, n), mkLog(2, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := merge.Merge(a, c)
				if res.Replayed != 2*n {
					b.Fatal("merge replayed wrong count")
				}
			}
		})
	}
}

// --- E12: per-object spec query ---

func BenchmarkE12SpecQuery(b *testing.B) {
	e, err := sim.NewEngine(sim.COMMU, 3, network.Config{Seed: 1}, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ce := e.(*commu.Engine)
	ce.Update(1, []op.Op{op.IncOp("hot", 1), op.IncOp("cold", 1)})
	e.Cluster().Quiesce(10 * time.Second)
	spec := divergence.Spec{
		Default:   divergence.Unlimited,
		PerObject: map[string]divergence.Limit{"hot": 0},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ce.QuerySpec(2, []string{"hot", "cold"}, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: scheduler ablation, the TO query path ---

func BenchmarkE13TOQuery(b *testing.B) {
	e, err := ordup.New(ordup.Config{
		Core:      core.Config{Sites: 2, Net: network.Config{Seed: 1}},
		Ordering:  ordup.Sequencer,
		Scheduler: ordup.TimestampOrdering,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Update(1, []op.Op{op.IncOp("x", 1)})
	e.Cluster().Quiesce(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(2, []string{"x"}, divergence.Limit(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: update round trip on a lossy link (retry/backoff cost) ---

func BenchmarkE14LossyDelivery(b *testing.B) {
	for _, loss := range []float64{0, 0.3} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			e, err := sim.NewEngine(sim.COMMU, 2, network.Config{Seed: 1, LossRate: loss}, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Update(1, []op.Op{op.IncOp("x", 1)}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := e.Cluster().Quiesce(60 * time.Second); err != nil {
				b.Fatal(err)
			}
		})
	}
}
