package esr

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"esr/internal/clock"
)

// readMk returns an update op suited to the method: RITU variants need
// timestamped writes (Thomas rule), the rest take commutative incs.
func readMk(m Method, obj string, n int64) Op {
	if m == RITU || m == RITUMultiVersion {
		return Write(obj, n)
	}
	return Inc(obj, n)
}

// TestReadLevelsEquivalence runs the same workload under every method
// and checks that, once delivery quiesces, all four consistency levels
// return the canonical converged value at every site — the acceptance
// criterion for the unified read path.
func TestReadLevelsEquivalence(t *testing.T) {
	for _, m := range []Method{COMMU, ORDUP, RITU, RITUMultiVersion} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			t.Parallel()
			c := open(t, Config{Replicas: 3, Method: m, Seed: 21})
			for i := 1; i <= 5; i++ {
				if _, err := c.Update(1+(i%3), readMk(m, "x", int64(i*10))); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Quiesce(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			for site := 1; site <= 3; site++ {
				want := c.Value(site, "x")
				if m == RITUMultiVersion {
					// ritu-mv state lives only in the version chains;
					// the chain head is the converged last-writer value.
					if v, _, ok := c.Engine().Cluster().Site(clock.SiteID(site)).MV.ReadLatest("x"); ok {
						want = v.Val
					}
				}
				for _, lv := range []Level{LevelEventual, LevelSession, LevelBounded, LevelStrong} {
					res, err := c.ReadLevel(site, lv, "x")
					if err != nil {
						t.Fatalf("ReadLevel(%d, %v): %v", site, lv, err)
					}
					if got := res.Value("x"); got.Num != want.Num {
						t.Errorf("site %d level %v: x = %v, want %v", site, lv, got, want)
					}
					if res.Level != lv {
						t.Errorf("site %d: result level = %v, want %v", site, res.Level, lv)
					}
				}
			}
		})
	}
}

// TestReadStrongMatchesCanonical checks the strong level against the
// canonical store dump while updates race with reads: every strong read
// must return a value the serial order has produced (never torn, never
// ahead of what the site applied).
func TestReadStrongMatchesCanonical(t *testing.T) {
	c := open(t, Config{Replicas: 3, Method: COMMU, Seed: 22})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Update(1, Inc("acct", 1)); err != nil {
				return
			}
		}
	}()
	var last int64 = -1
	for i := 0; i < 50; i++ {
		res, err := c.ReadLevel(2, LevelStrong, "acct")
		if err != nil {
			t.Fatalf("strong read: %v", err)
		}
		got := res.Value("acct").Num
		if got < last {
			t.Fatalf("strong reads went backwards at one site: %d after %d", got, last)
		}
		last = got
	}
	close(stop)
	wg.Wait()
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := c.Value(2, "acct")
	res, err := c.ReadLevel(2, LevelStrong, "acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value("acct"); got.Num != want.Num {
		t.Errorf("strong read after quiescence = %v, want canonical %v", got, want)
	}
}

// TestReadBoundedStaleness checks the bounded level's contract: the
// result's observed staleness never exceeds the configured Δt, and the
// snapshot value is a real committed state.
func TestReadBoundedStaleness(t *testing.T) {
	const dt = 250 * time.Millisecond
	c := open(t, Config{Replicas: 3, Method: COMMU, Seed: 23, MaxStaleness: dt})
	for i := 0; i < 10; i++ {
		if _, err := c.Update(1, Inc("x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		res, err := c.ReadWith(2, []string{"x"}, ReadOptions{Level: LevelBounded, MaxStaleness: dt})
		if err != nil {
			t.Fatalf("bounded read: %v", err)
		}
		if res.Staleness > dt {
			t.Errorf("bounded read staleness %v exceeds Δt %v", res.Staleness, dt)
		}
		if got := res.Value("x").Num; got < 0 || got > 10 {
			t.Errorf("bounded read saw impossible value %d", got)
		}
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(2, "x") // Config default is eventual unless set
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value("x").Num; got != 10 {
		t.Errorf("post-quiesce read = %d, want 10", got)
	}
}

// TestReadDefaultLevelFromConfig checks that Config.Consistency selects
// the level Cluster.Read serves, and that an unknown spelling fails
// Open.
func TestReadDefaultLevelFromConfig(t *testing.T) {
	c := open(t, Config{Replicas: 2, Method: COMMU, Seed: 24, Consistency: "bounded-staleness"})
	if _, err := c.Update(1, Inc("x", 7)); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelBounded {
		t.Errorf("default-level read served %v, want %v", res.Level, LevelBounded)
	}
	if _, err := Open(Config{Replicas: 2, Method: COMMU, Consistency: "read-committed"}); err == nil {
		t.Errorf("unknown consistency level must fail Open")
	}
}

// TestReadSessionLevel checks read-your-writes through the session
// facade: a session write is visible to the session's own reads at
// every site, immediately after Update returns.
func TestReadSessionLevel(t *testing.T) {
	c := open(t, Config{Replicas: 3, Method: COMMU, Seed: 25})
	s, err := c.NewSession()
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := s.Update(1, Inc("y", int64(i))); err != nil {
			t.Fatal(err)
		}
		want := int64(i * (i + 1) / 2)
		for site := 1; site <= 3; site++ {
			res, err := s.Read(site, "y")
			if err != nil {
				t.Fatalf("session read at %d: %v", site, err)
			}
			if got := res.Value("y").Num; got != want {
				t.Errorf("session read at %d after write %d = %d, want %d", site, i, got, want)
			}
			if res.Level != LevelSession {
				t.Errorf("session read level = %v", res.Level)
			}
		}
	}
}

// TestReadSnapshotSurvivesGC checks the pin contract end to end at the
// facade: version GC with the full history prunable still leaves every
// level returning the canonical value, and a pinned long-running reader
// is never pruned from under (the MVStore-level test covers the race;
// this covers the GCVersions horizon wiring).
func TestReadSnapshotSurvivesGC(t *testing.T) {
	c := open(t, Config{Replicas: 3, Method: RITUMultiVersion, Seed: 26})
	for i := 1; i <= 8; i++ {
		if _, err := c.Update(1, Write("z", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	collected := c.GCVersions()
	if collected == 0 {
		t.Errorf("GCVersions collected nothing after 8 writes at 3 sites")
	}
	for _, lv := range []Level{LevelEventual, LevelSession, LevelBounded, LevelStrong} {
		res, err := c.ReadLevel(2, lv, "z")
		if err != nil {
			t.Fatalf("ReadLevel(%v) after GC: %v", lv, err)
		}
		if got := res.Value("z").Num; got != 8 {
			t.Errorf("level %v after GC: z = %d, want 8", lv, got)
		}
	}
}

// TestReadWatermarks sanity-checks the facade watermark accessors: after
// quiescence SAFETIME and the applied watermark agree and are non-zero,
// and staleness reads zero.
func TestReadWatermarks(t *testing.T) {
	c := open(t, Config{Replicas: 2, Method: COMMU, Seed: 27})
	if _, err := c.Update(1, Inc("w", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for site := 1; site <= 2; site++ {
		st, wm := c.SafeTime(site), c.Watermark(site)
		if wm.IsZero() {
			t.Errorf("site %d watermark zero after update", site)
		}
		if st.Less(wm) {
			t.Errorf("site %d SAFETIME %v below watermark %v at quiescence", site, st, wm)
		}
		if d := c.Staleness(site); d != 0 {
			t.Errorf("site %d staleness %v at quiescence, want 0", site, d)
		}
	}
	if st := c.SafeTime(99); !st.IsZero() {
		t.Errorf("unknown site SafeTime = %v", st)
	}
}

// TestSessionReadAcrossFailover is the read-your-writes failover check:
// a session keeps its guarantee when the site it wrote through crashes
// and restarts, and when it reads at a replica that was down while the
// write committed.
func TestSessionReadAcrossFailover(t *testing.T) {
	for _, m := range []Method{COMMU, ORDUP} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			t.Parallel()
			c := open(t, Config{Replicas: 3, Method: m, Seed: 28, JournalDir: t.TempDir()})
			s, err := c.NewSession()
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			if _, err := s.Update(1, Inc("bal", 100)); err != nil {
				t.Fatal(err)
			}
			if err := c.Quiesce(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			// Crash a replica, commit a session write while it is down,
			// then restart: the session's next read at the recovered site
			// must still see its own write.
			if err := c.CrashSite(3); err != nil {
				t.Fatalf("CrashSite: %v", err)
			}
			if _, err := s.Update(1, Inc("bal", 23)); err != nil {
				t.Fatal(err)
			}
			if err := c.RestartSite(3); err != nil {
				t.Fatalf("RestartSite: %v", err)
			}
			res, err := s.Read(3, "bal")
			if err != nil {
				t.Fatalf("session read at recovered site: %v", err)
			}
			if got := res.Value("bal").Num; got != 123 {
				t.Errorf("read-your-writes after failover = %d, want 123", got)
			}
			// Crash and restart the origin itself; the session keeps
			// working through it.
			if err := c.CrashSite(1); err != nil {
				t.Fatalf("CrashSite origin: %v", err)
			}
			if err := c.RestartSite(1); err != nil {
				t.Fatalf("RestartSite origin: %v", err)
			}
			if _, err := s.Update(2, Inc("bal", 1)); err != nil {
				t.Fatal(err)
			}
			res, err = s.Read(1, "bal")
			if err != nil {
				t.Fatalf("session read at restarted origin: %v", err)
			}
			if got := res.Value("bal").Num; got != 124 {
				t.Errorf("read at restarted origin = %d, want 124", got)
			}
		})
	}
}

// TestReadManyObjectsAllLevels fuzzes the read path with a wider
// keyspace so snapshot reads cover objects with and without version
// chains (coherency fallback path).
func TestReadManyObjectsAllLevels(t *testing.T) {
	c := open(t, Config{Replicas: 2, Method: COMMU, Seed: 29})
	objs := make([]string, 6)
	for i := range objs {
		objs[i] = fmt.Sprintf("k%d", i)
		if _, err := c.Update(1, Inc(objs[i], int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, lv := range []Level{LevelEventual, LevelSession, LevelBounded, LevelStrong} {
		res, err := c.ReadLevel(2, lv, objs...)
		if err != nil {
			t.Fatalf("ReadLevel(%v): %v", lv, err)
		}
		for i, obj := range objs {
			if got := res.Value(obj).Num; got != int64(i+1) {
				t.Errorf("level %v: %s = %d, want %d", lv, obj, got, i+1)
			}
		}
	}
}
